#ifndef WF_CORE_PHRASE_SENTIMENT_H_
#define WF_CORE_PHRASE_SENTIMENT_H_

#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "text/token.h"

namespace wf::core {

// Phrase-level polarity per §4.2: a phrase is positive/negative according
// to the sentiment words it contains ("excellent pictures" is positive
// because "excellent" JJ is positive); a negative adverb inside the phrase
// reverses its polarity ("no good reason"). Multiple sentiment words vote;
// a tie is neutral.
class PhraseSentimentScorer {
 public:
  // `lexicon` must outlive the scorer.
  explicit PhraseSentimentScorer(const lexicon::SentimentLexicon* lexicon)
      : lexicon_(lexicon) {}

  // Polarity of tokens [begin, end) (absolute indices within `parse.span`).
  // `exclude` marks one token to skip (the predicate head when scoring a VP
  // source); pass SIZE_MAX to exclude nothing. When `ignore_negation` is
  // set, negative adverbs in the range are skipped instead of flipping the
  // phrase — used for VP-internal sources, whose negation is already
  // applied at the sentence level.
  lexicon::Polarity Score(const text::TokenStream& tokens,
                          const parse::SentenceParse& parse, size_t begin,
                          size_t end, size_t exclude = SIZE_MAX,
                          bool ignore_negation = false) const;

  // Signed vote total (useful for diagnostics and the collocation baseline).
  int VoteCount(const text::TokenStream& tokens,
                const parse::SentenceParse& parse, size_t begin, size_t end,
                size_t exclude = SIZE_MAX,
                bool ignore_negation = false) const;

 private:
  const lexicon::SentimentLexicon* lexicon_;
};

}  // namespace wf::core

#endif  // WF_CORE_PHRASE_SENTIMENT_H_
