#ifndef WF_CORE_CONTEXT_H_
#define WF_CORE_CONTEXT_H_

#include <vector>

#include "text/token.h"

namespace wf::core {

// A sentiment context (§3): the full sentence containing a subject spot,
// plus optionally some surrounding sentences, per the "sentiment context
// window formation rule".
struct SentimentContext {
  size_t sentence_index = 0;       // index into the document's spans
  text::SentenceSpan sentence;     // the spot's own sentence
  size_t window_begin_token = 0;   // extended window (token range)
  size_t window_end_token = 0;
};

class ContextBuilder {
 public:
  struct Options {
    // Sentences of surrounding text included on each side of the spot's
    // sentence in the extended window.
    int extra_sentences = 0;
  };

  ContextBuilder() : ContextBuilder(Options{}) {}
  explicit ContextBuilder(const Options& options) : options_(options) {}

  // Builds the context for a spot starting at `spot_begin_token`. The spans
  // must be sorted and non-overlapping (as produced by SentenceSplitter).
  // Returns false when the token lies in no sentence.
  bool Build(const std::vector<text::SentenceSpan>& spans,
             size_t spot_begin_token, SentimentContext* out) const;

 private:
  Options options_;
};

}  // namespace wf::core

#endif  // WF_CORE_CONTEXT_H_
