#include "core/sentiment_store.h"

#include <algorithm>
#include <set>

namespace wf::core {

using ::wf::lexicon::Polarity;

void SentimentStore::Add(SentimentMention mention) {
  mentions_.push_back(std::move(mention));
}

std::vector<std::string> SentimentStore::Subjects() const {
  std::set<std::string> subjects;
  for (const SentimentMention& m : mentions_) subjects.insert(m.subject);
  return std::vector<std::string>(subjects.begin(), subjects.end());
}

SentimentAggregate SentimentStore::ForSubject(
    const std::string& subject) const {
  SentimentAggregate agg;
  for (const SentimentMention& m : mentions_) {
    if (m.subject != subject) continue;
    switch (m.polarity) {
      case Polarity::kPositive:
        ++agg.positive;
        break;
      case Polarity::kNegative:
        ++agg.negative;
        break;
      case Polarity::kNeutral:
        ++agg.neutral;
        break;
    }
  }
  return agg;
}

SentimentStore::PageAggregate SentimentStore::PagesForSubject(
    const std::string& subject) const {
  std::map<std::string, std::pair<bool, bool>> per_doc;  // doc -> (pos, neg)
  for (const SentimentMention& m : mentions_) {
    if (m.subject != subject) continue;
    auto& flags = per_doc[m.doc_id];
    if (m.polarity == Polarity::kPositive) flags.first = true;
    if (m.polarity == Polarity::kNegative) flags.second = true;
  }
  PageAggregate out;
  out.pages = per_doc.size();
  for (const auto& [doc, flags] : per_doc) {
    if (flags.first) ++out.pages_positive;
    if (flags.second) ++out.pages_negative;
  }
  return out;
}

std::vector<const SentimentMention*> SentimentStore::Find(
    const std::string& subject, lexicon::Polarity polarity) const {
  std::vector<const SentimentMention*> out;
  for (const SentimentMention& m : mentions_) {
    if (m.subject == subject && m.polarity == polarity) out.push_back(&m);
  }
  return out;
}

}  // namespace wf::core
