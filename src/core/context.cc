#include "core/context.h"

namespace wf::core {

bool ContextBuilder::Build(const std::vector<text::SentenceSpan>& spans,
                           size_t spot_begin_token,
                           SentimentContext* out) const {
  for (size_t i = 0; i < spans.size(); ++i) {
    const text::SentenceSpan& s = spans[i];
    if (spot_begin_token >= s.begin_token && spot_begin_token < s.end_token) {
      out->sentence_index = i;
      out->sentence = s;
      size_t lo = i, hi = i;
      for (int k = 0; k < options_.extra_sentences; ++k) {
        if (lo > 0) --lo;
        if (hi + 1 < spans.size()) ++hi;
      }
      out->window_begin_token = spans[lo].begin_token;
      out->window_end_token = spans[hi].end_token;
      return true;
    }
  }
  return false;
}

}  // namespace wf::core
