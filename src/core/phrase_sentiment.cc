#include "core/phrase_sentiment.h"

#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::core {

using ::wf::lexicon::LexPos;
using ::wf::lexicon::Polarity;

int PhraseSentimentScorer::VoteCount(const text::TokenStream& tokens,
                                     const parse::SentenceParse& parse,
                                     size_t begin, size_t end, size_t exclude,
                                     bool ignore_negation) const {
  int votes = 0;
  bool negated = false;
  std::string gram;  // hoisted n-gram buffer; reused across positions
  size_t i = begin;
  while (i < end) {
    if (i == exclude) {
      ++i;
      continue;
    }
    if (text::IsNegationWord(tokens[i].text)) {
      if (!ignore_negation) negated = true;
      ++i;
      continue;
    }
    if (tokens[i].kind != text::TokenKind::kWord) {
      ++i;
      continue;
    }
    // Multi-word entries first (trigram then bigram), then the single word.
    bool matched = false;
    for (size_t n = 3; n >= 2; --n) {
      if (i + n > end) continue;
      bool all_words = true;
      gram.clear();
      for (size_t k = 0; k < n; ++k) {
        if (tokens[i + k].kind != text::TokenKind::kWord) {
          all_words = false;
          break;
        }
        if (!gram.empty()) gram += ' ';
        for (char c : tokens[i + k].text) {
          gram += common::ToLowerAscii(c);
        }
      }
      if (!all_words) continue;
      auto hit = lexicon_->LookupLemma(gram, LexPos::kAny);
      if (hit.has_value()) {
        votes += static_cast<int>(*hit);
        i += n;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    auto hit = lexicon_->Lookup(tokens[i].text, parse.TagAt(i));
    if (hit.has_value()) {
      // Excess reading: "too <adjective>" is negative regardless of the
      // adjective's own polarity ("too simple", "too expensive"). The
      // degree word may sit just outside the scored phrase (the chunker
      // attaches trailing adverbs to the VP), so look at the literal
      // previous token within the sentence.
      bool excess = i > parse.span.begin_token &&
                    pos::IsAdjectiveTag(parse.TagAt(i)) &&
                    common::EqualsIgnoreCase(tokens[i - 1].text, "too");
      votes += excess ? -1 : static_cast<int>(*hit);
    }
    ++i;
  }
  return negated ? -votes : votes;
}

Polarity PhraseSentimentScorer::Score(const text::TokenStream& tokens,
                                      const parse::SentenceParse& parse,
                                      size_t begin, size_t end, size_t exclude,
                                      bool ignore_negation) const {
  int votes = VoteCount(tokens, parse, begin, end, exclude, ignore_negation);
  if (votes > 0) return Polarity::kPositive;
  if (votes < 0) return Polarity::kNegative;
  return Polarity::kNeutral;
}

}  // namespace wf::core
