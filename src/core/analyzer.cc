#include "core/analyzer.h"

#include <utility>

#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::core {

using ::wf::common::LowerInto;
using ::wf::lexicon::Flip;
using ::wf::lexicon::Polarity;
using ::wf::lexicon::SentenceComponent;
using ::wf::lexicon::SentimentPattern;
using ::wf::lexicon::VoiceConstraint;
using ::wf::parse::Chunk;
using ::wf::parse::SentenceParse;

std::string_view SentimentSourceName(SentimentSource s) {
  switch (s) {
    case SentimentSource::kNone:
      return "none";
    case SentimentSource::kDirectPattern:
      return "direct-pattern";
    case SentimentSource::kTransferPattern:
      return "transfer-pattern";
    case SentimentSource::kContrastivePp:
      return "contrastive-pp";
    case SentimentSource::kLocalNp:
      return "local-np";
    case SentimentSource::kSentenceFallback:
      return "sentence-fallback";
    case SentimentSource::kCrossSentence:
      return "cross-sentence";
  }
  return "?";
}

namespace {

// Renders a pattern for explanations ("impress + PP(by;with)").
std::string PatternToString(const SentimentPattern& p) {
  std::string out = p.predicate;
  out += ' ';
  if (p.direct) {
    out += (p.polarity == Polarity::kPositive) ? '+' : '-';
  } else {
    if (p.flip_source) out += '~';
    out += lexicon::SentenceComponentName(p.source.component);
  }
  out += ' ';
  out += lexicon::SentenceComponentName(p.target.component);
  return out;
}

bool Overlaps(const Chunk& chunk, size_t begin, size_t end) {
  return chunk.begin < end && begin < chunk.end;
}

}  // namespace

SentimentAnalyzer::SentimentAnalyzer(const lexicon::SentimentLexicon* lexicon,
                                     const lexicon::PatternDatabase* patterns,
                                     const AnalyzerOptions& options)
    : lexicon_(lexicon),
      patterns_(patterns),
      options_(options),
      scorer_(lexicon) {}

SentimentAnalyzer::SubjectLocation SentimentAnalyzer::LocateSubject(
    const SentenceParse& parse, size_t subject_begin,
    size_t subject_end) const {
  SubjectLocation loc;
  // PP membership first: PP objects are also NPs and could be confused
  // with the clause object.
  for (size_t p = 0; p < parse.pps.size(); ++p) {
    int np = parse.pps[p].np_chunk;
    if (np >= 0 && Overlaps(parse.chunks[np], subject_begin, subject_end)) {
      loc.pp_index = static_cast<int>(p);
      loc.chunk = np;
      // An NP-attached PP directly behind the subject NP is part of the
      // subject phrase: "The Memory Stick support in the NR70 series is
      // well implemented" assigns to NR70 as part of the SP.
      std::string_view prep = parse.pps[p].preposition;
      bool np_attaching = prep == "of" || prep == "in" || prep == "on" ||
                          prep == "with" || prep == "for" ||
                          prep == "within";
      if (np_attaching && np >= 2 && parse.subject_chunk == np - 2 &&
          parse.chunks[static_cast<size_t>(np) - 1].type ==
              parse::ChunkType::kPP) {
        loc.in_sp = true;
        loc.pp_index = -1;
      }
      return loc;
    }
  }
  if (parse.subject_chunk >= 0 &&
      Overlaps(parse.chunks[parse.subject_chunk], subject_begin,
               subject_end)) {
    loc.in_sp = true;
    loc.chunk = parse.subject_chunk;
    return loc;
  }
  if (parse.object_chunk >= 0 &&
      Overlaps(parse.chunks[parse.object_chunk], subject_begin,
               subject_end)) {
    loc.in_op = true;
    loc.chunk = parse.object_chunk;
    return loc;
  }
  if (parse.complement_chunk >= 0 &&
      Overlaps(parse.chunks[parse.complement_chunk], subject_begin,
               subject_end)) {
    loc.in_cp = true;
    loc.chunk = parse.complement_chunk;
    return loc;
  }
  // Otherwise: find the containing NP chunk, if any.
  for (size_t c = 0; c < parse.chunks.size(); ++c) {
    if (parse.chunks[c].type == parse::ChunkType::kNP &&
        Overlaps(parse.chunks[c], subject_begin, subject_end)) {
      loc.chunk = static_cast<int>(c);
      break;
    }
  }
  return loc;
}

bool SentimentAnalyzer::IsPassive(const text::TokenStream& tokens,
                                  const SentenceParse& parse) const {
  if (parse.predicate_chunk < 0) return false;
  const Chunk& vp = parse.chunks[parse.predicate_chunk];
  bool saw_be = false;
  int head = -1;
  std::string lower_buf, lemma_buf;  // hoisted; SSO keeps the loop alloc-free
  for (size_t i = vp.begin; i < vp.end; ++i) {
    if (!pos::IsVerbTag(parse.TagAt(i))) continue;
    std::string_view lemma =
        text::VerbLemma(LowerInto(tokens[i].text, &lower_buf), &lemma_buf);
    if (lemma == "be" || lemma == "get") saw_be = true;
    head = static_cast<int>(i);
  }
  return saw_be && head >= 0 &&
         parse.TagAt(static_cast<size_t>(head)) == pos::PosTag::kVBN;
}

lexicon::Polarity SentimentAnalyzer::SourcePolarity(
    const text::TokenStream& tokens, const SentenceParse& parse,
    const SentimentPattern& pattern, size_t subject_begin,
    size_t subject_end) const {
  int chunk = -1;
  switch (pattern.source.component) {
    case SentenceComponent::kSP:
      chunk = parse.subject_chunk;
      break;
    case SentenceComponent::kOP:
      chunk = parse.object_chunk;
      break;
    case SentenceComponent::kCP:
      chunk = parse.complement_chunk;
      if (chunk < 0) {
        // "is well implemented": no separate ADJP — the predicative content
        // sits inside the VP. Score the VP's non-auxiliary words; negation
        // words are skipped because sentence-level negation already flips
        // the final assignment.
        const Chunk& vp = parse.chunks[parse.predicate_chunk];
        int votes = 0;
        std::string lower_buf, lemma_buf;
        for (size_t i = vp.begin; i < vp.end; ++i) {
          if (text::IsNegationWord(tokens[i].text)) continue;
          if (pos::IsVerbTag(parse.TagAt(i))) {
            std::string_view lemma = text::VerbLemma(
                LowerInto(tokens[i].text, &lower_buf), &lemma_buf);
            if (lemma == "be" || lemma == "have" || lemma == "do" ||
                lemma == "get") {
              continue;
            }
          }
          auto hit = lexicon_->Lookup(tokens[i].text, parse.TagAt(i));
          if (hit.has_value()) votes += static_cast<int>(*hit);
        }
        if (votes > 0) return Polarity::kPositive;
        if (votes < 0) return Polarity::kNegative;
        return Polarity::kNeutral;
      }
      break;
    case SentenceComponent::kPP: {
      for (const parse::PpAttachment& pp : parse.pps) {
        if (pp.np_chunk >= 0 && pattern.source.AllowsPreposition(pp.preposition)) {
          chunk = pp.np_chunk;
          break;
        }
      }
      break;
    }
    case SentenceComponent::kVP: {
      // Trailing adverbs of the VP, excluding the head verb.
      const Chunk& vp = parse.chunks[parse.predicate_chunk];
      size_t head = vp.begin;
      for (size_t i = vp.begin; i < vp.end; ++i) {
        if (pos::IsVerbTag(parse.TagAt(i))) head = i;
      }
      // Negation inside the VP is applied at the sentence level, so the
      // phrase score must not flip for it again.
      return scorer_.Score(tokens, parse, vp.begin, vp.end, head,
                           /*ignore_negation=*/true);
    }
  }
  if (chunk < 0) return Polarity::kNeutral;
  const Chunk& src = parse.chunks[chunk];
  // The subject itself never contributes to its own sentiment: mask its
  // tokens when the source phrase contains the spot (e.g. OP source that
  // *is* the subject NP).
  if (src.begin < subject_end && subject_begin < src.end) {
    // Score around the subject tokens.
    int votes = 0;
    if (src.begin < subject_begin) {
      votes += scorer_.VoteCount(tokens, parse, src.begin, subject_begin);
    }
    if (subject_end < src.end) {
      votes += scorer_.VoteCount(tokens, parse, subject_end, src.end);
    }
    if (votes > 0) return Polarity::kPositive;
    if (votes < 0) return Polarity::kNegative;
    return Polarity::kNeutral;
  }
  return scorer_.Score(tokens, parse, src.begin, src.end);
}

SubjectSentiment SentimentAnalyzer::MatchPatterns(
    const text::TokenStream& tokens, const SentenceParse& parse,
    const SubjectLocation& where, size_t subject_begin,
    size_t subject_end) const {
  SubjectSentiment result;
  if (parse.predicate_chunk < 0 || parse.predicate_lemma.empty()) {
    return result;
  }
  const std::vector<SentimentPattern>* cands =
      patterns_->Lookup(parse.predicate_lemma);
  bool passive = IsPassive(tokens, parse);
  if (cands == nullptr && passive) {
    // Unknown participle after a be-auxiliary ("is well implemented"):
    // treat the clause as copular and let the CP source rule score the
    // predicative content inside the VP.
    cands = patterns_->Lookup("be");
    passive = false;
  }
  if (cands == nullptr) return result;

  const SentimentPattern* best = nullptr;
  int best_score = 0;
  Polarity best_polarity = Polarity::kNeutral;
  for (const SentimentPattern& p : *cands) {
    // Voice constraint.
    if (p.voice == VoiceConstraint::kActive && passive) continue;
    if (p.voice == VoiceConstraint::kPassive && !passive) continue;

    // Target must be the component holding the subject.
    int score = 1;
    switch (p.target.component) {
      case SentenceComponent::kSP:
        if (!where.in_sp) continue;
        break;
      case SentenceComponent::kOP:
        if (!where.in_op) continue;
        break;
      case SentenceComponent::kPP: {
        if (where.pp_index < 0) continue;
        const parse::PpAttachment& pp =
            parse.pps[static_cast<size_t>(where.pp_index)];
        if (!p.target.AllowsPreposition(pp.preposition)) continue;
        if (!p.target.prepositions.empty()) score += 2;  // specific prep
        break;
      }
      default:
        continue;
    }
    if (p.voice != VoiceConstraint::kAny) score += 1;

    Polarity polarity;
    if (p.direct) {
      polarity = p.polarity;
      score += 2;
    } else {
      polarity =
          SourcePolarity(tokens, parse, p, subject_begin, subject_end);
      if (polarity == Polarity::kNeutral) {
        // A trans pattern whose source carries no sentiment assigns
        // nothing; it can still win only if nothing better exists — give it
        // the lowest score.
        score = 0;
      } else {
        score += 3;  // live transfer beats a bare direct match? no: direct=+2
        if (p.flip_source) polarity = Flip(polarity);
      }
    }
    if (best == nullptr || score > best_score) {
      best = &p;
      best_score = score;
      best_polarity = polarity;
    }
  }
  if (best == nullptr) return result;

  result.polarity = best_polarity;
  result.source = best->direct ? SentimentSource::kDirectPattern
                               : SentimentSource::kTransferPattern;
  result.pattern = PatternToString(*best);

  if (options_.handle_negation && parse.vp_negated &&
      result.polarity != Polarity::kNeutral) {
    result.polarity = Flip(result.polarity);
  }
  return result;
}

SubjectSentiment SentimentAnalyzer::AnalyzeSubject(
    const text::TokenStream& tokens, const SentenceParse& parse,
    size_t subject_begin, size_t subject_end) const {
  SubjectLocation where = LocateSubject(parse, subject_begin, subject_end);
  SubjectSentiment result =
      MatchPatterns(tokens, parse, where, subject_begin, subject_end);
  if (result.polarity != Polarity::kNeutral) return result;

  // Contrastive-PP rule: "Unlike X, <clause>" gives X the reverse of what
  // the clause's subject receives; "like X," the same; a comparative
  // "than X" standard of comparison also receives the reverse ("the A is
  // better than the B" praises A at B's expense).
  if (options_.contrastive_pp && where.pp_index >= 0 &&
      parse.subject_chunk >= 0) {
    const parse::PpAttachment& pp =
        parse.pps[static_cast<size_t>(where.pp_index)];
    if (pp.preposition == "unlike" || pp.preposition == "like" ||
        pp.preposition == "than") {
      SubjectLocation sp_loc;
      sp_loc.in_sp = true;
      sp_loc.chunk = parse.subject_chunk;
      const Chunk& sp = parse.chunks[parse.subject_chunk];
      SubjectSentiment sp_result =
          MatchPatterns(tokens, parse, sp_loc, sp.begin, sp.end);
      if (sp_result.polarity != Polarity::kNeutral) {
        result.polarity = pp.preposition == "like"
                              ? sp_result.polarity
                              : Flip(sp_result.polarity);
        result.source = SentimentSource::kContrastivePp;
        result.pattern = std::move(sp_result.pattern);
        result.pattern.append(" via ").append(pp.preposition);
        return result;
      }
    }
  }

  // Local NP fallback: modifiers inside the subject's own NP
  // ("the superb NR70 ...").
  if (options_.local_np_fallback && where.chunk >= 0) {
    const Chunk& np = parse.chunks[where.chunk];
    int votes = 0;
    if (np.begin < subject_begin) {
      votes += scorer_.VoteCount(tokens, parse, np.begin, subject_begin);
    }
    if (subject_end < np.end) {
      votes += scorer_.VoteCount(tokens, parse, subject_end, np.end);
    }
    if (votes != 0) {
      result.polarity =
          votes > 0 ? Polarity::kPositive : Polarity::kNegative;
      result.source = SentimentSource::kLocalNp;
      return result;
    }
  }

  // Whole-sentence lexical fallback (ablation only).
  if (options_.sentence_fallback) {
    Polarity p = scorer_.Score(tokens, parse, parse.span.begin_token,
                               parse.span.end_token);
    if (p != Polarity::kNeutral) {
      result.polarity = p;
      result.source = SentimentSource::kSentenceFallback;
      return result;
    }
  }
  return result;
}

}  // namespace wf::core
