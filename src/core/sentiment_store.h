#ifndef WF_CORE_SENTIMENT_STORE_H_
#define WF_CORE_SENTIMENT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "lexicon/sentiment_lexicon.h"

namespace wf::core {

// One extracted (subject, sentiment) pair with provenance — the record the
// miner writes "into a database to be fed into user applications".
struct SentimentMention {
  std::string doc_id;
  std::string subject;      // canonical subject name
  int synset_id = -1;       // -1 for ad-hoc (Mode B) subjects
  lexicon::Polarity polarity = lexicon::Polarity::kNeutral;
  SentimentSource source = SentimentSource::kNone;
  std::string pattern;        // matched pattern, when any
  std::string sentence_text;  // surface text of the sentiment context
  size_t sentence_index = 0;
  size_t sentence_begin = 0;  // byte offsets of the sentence in the document
  size_t sentence_end = 0;
};

// Aggregate counts for one subject.
struct SentimentAggregate {
  size_t positive = 0;
  size_t negative = 0;
  size_t neutral = 0;

  size_t total() const { return positive + negative + neutral; }
  double PositiveShare() const {
    size_t polar = positive + negative;
    return polar == 0 ? 0.0 : static_cast<double>(positive) / polar;
  }
};

// In-memory store of extracted sentiments with the roll-up queries the
// reputation application needs (per subject, per document/page).
class SentimentStore {
 public:
  void Add(SentimentMention mention);

  const std::vector<SentimentMention>& mentions() const { return mentions_; }
  size_t size() const { return mentions_.size(); }

  // Distinct subjects seen, sorted.
  std::vector<std::string> Subjects() const;

  // Counts over all mentions of `subject`.
  SentimentAggregate ForSubject(const std::string& subject) const;

  // Page-level roll-up: of the documents mentioning `subject`, how many
  // contain at least one positive (resp. negative) mention of it. Drives
  // the "% of pages with positive sentiment" chart (Figure 2 inset).
  struct PageAggregate {
    size_t pages = 0;           // docs with any mention
    size_t pages_positive = 0;  // docs with >= 1 positive mention
    size_t pages_negative = 0;
  };
  PageAggregate PagesForSubject(const std::string& subject) const;

  // All mentions of `subject` with the given polarity (Figure 5 listing).
  std::vector<const SentimentMention*> Find(const std::string& subject,
                                            lexicon::Polarity polarity) const;

 private:
  std::vector<SentimentMention> mentions_;
};

}  // namespace wf::core

#endif  // WF_CORE_SENTIMENT_STORE_H_
