#include "core/miner.h"

#include "common/arena.h"
#include "common/string_util.h"

namespace wf::core {

using ::wf::lexicon::Polarity;

namespace {

// Surface text of a token range, reconstructed from token surfaces.
std::string RangeText(const text::TokenStream& tokens, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!out.empty() && tokens[i].kind == text::TokenKind::kWord) out += ' ';
    if (!out.empty() && tokens[i].kind != text::TokenKind::kWord &&
        tokens[i].text != "." && tokens[i].text != "," &&
        tokens[i].text != "!" && tokens[i].text != "?" &&
        tokens[i].text != ";" && tokens[i].text != ":" &&
        tokens[i].text != "'s" && tokens[i].text != "n't") {
      out += ' ';
    }
    out += tokens[i].text;
  }
  return out;
}

}  // namespace

SentimentMiner::SentimentMiner(const lexicon::SentimentLexicon* lexicon,
                               const lexicon::PatternDatabase* patterns,
                               const Config& config)
    : lexicon_(lexicon),
      patterns_(patterns),
      config_(config),
      analyzer_(lexicon, patterns, config.analyzer),
      context_builder_(config.context) {}

void SentimentMiner::AddSubject(const spot::SynonymSet& subject) {
  spotter_.AddSynonymSet(subject);
}

void SentimentMiner::AddTopicTerms(const spot::TopicTermSet& topic) {
  disambiguator_.AddTopic(topic);
}

void SentimentMiner::ProcessDocument(const std::string& doc_id,
                                     const std::string& body,
                                     SentimentStore* store) {
  text::TokenStream tokens = tokenizer_.Tokenize(body);
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  MineTokens(doc_id, tokens, spans, nullptr, store);
}

void SentimentMiner::ProcessDocument(const std::string& doc_id,
                                     const LinguisticAnalysis& analysis,
                                     SentimentStore* store) {
  MineTokens(doc_id, analysis.tokens, analysis.sentences, &analysis, store);
}

void SentimentMiner::MineTokens(const std::string& doc_id,
                                const text::TokenStream& tokens,
                                const std::vector<text::SentenceSpan>& spans,
                                const LinguisticAnalysis* analysis,
                                SentimentStore* store) {
  std::vector<spot::SubjectSpot> spots = spotter_.Spot(tokens);
  if (spots.empty()) return;

  // Disambiguation.
  std::vector<spot::SubjectSpot> on_topic;
  if (config_.use_disambiguator) {
    const spot::CorpusStats* stats = external_stats_;
    if (stats == nullptr) {
      own_stats_.AddDocument(tokens);
      stats = &own_stats_;
    }
    for (const spot::DisambiguationResult& r :
         disambiguator_.Evaluate(tokens, spots, *stats)) {
      if (r.on_topic) on_topic.push_back(r.spot);
    }
  } else {
    on_topic = spots;
  }

  // Per-sentence clause parses are cached: several spots often share a
  // sentence. With a precomputed artifact the parses are already there.
  // The arena backs any parse built locally (fallback path and fragment
  // attribution); declared before the parse vectors so it outlives their
  // string_views.
  common::Arena parse_arena;
  common::StringInterner parse_interner(&parse_arena);
  std::vector<int> parse_of_sentence(spans.size(), -1);
  std::vector<std::vector<parse::SentenceParse>> parses;

  for (const spot::SubjectSpot& spot : on_topic) {
    SentimentContext ctx;
    if (!context_builder_.Build(spans, spot.begin_token, &ctx)) continue;

    const std::vector<parse::SentenceParse>* clauses_ptr;
    if (analysis != nullptr) {
      clauses_ptr = &analysis->sentence_clauses[ctx.sentence_index];
    } else {
      int& cached = parse_of_sentence[ctx.sentence_index];
      if (cached < 0) {
        std::vector<pos::PosTag> tags =
            tagger_.TagSentence(tokens, ctx.sentence);
        parses.push_back(sentence_analyzer_.AnalyzeClauses(
            tokens, ctx.sentence, tags, &parse_interner));
        cached = static_cast<int>(parses.size()) - 1;
      }
      clauses_ptr = &parses[static_cast<size_t>(cached)];
    }
    const std::vector<parse::SentenceParse>& clauses = *clauses_ptr;
    const parse::SentenceParse* parse_ptr = &clauses.front();
    for (const parse::SentenceParse& clause : clauses) {
      if (spot.begin_token >= clause.span.begin_token &&
          spot.begin_token < clause.span.end_token) {
        parse_ptr = &clause;
        break;
      }
    }

    SubjectSentiment verdict = analyzer_.AnalyzeSubject(
        tokens, *parse_ptr, spot.begin_token, spot.end_token);

    // Context-window fragment attribution ("I bought it in May. Big
    // mistake."): a short verbless follow-up carries the sentiment.
    if (config_.attribute_fragments &&
        verdict.polarity == Polarity::kNeutral &&
        ctx.sentence_index + 1 < spans.size()) {
      const text::SentenceSpan& next = spans[ctx.sentence_index + 1];
      if (next.size() <= 6) {
        std::vector<pos::PosTag> frag_tags =
            analysis != nullptr
                ? analysis->sentence_tags[ctx.sentence_index + 1]
                : tagger_.TagSentence(tokens, next);
        parse::SentenceParse frag =
            sentence_analyzer_.Analyze(tokens, next, frag_tags,
                                       &parse_interner);
        if (frag.predicate_chunk < 0) {
          PhraseSentimentScorer scorer(lexicon_);
          Polarity p = scorer.Score(tokens, frag, next.begin_token,
                                    next.end_token);
          if (p != Polarity::kNeutral) {
            verdict.polarity = p;
            verdict.source = SentimentSource::kCrossSentence;
            verdict.pattern.clear();
          }
        }
      }
    }
    if (!config_.record_neutral &&
        verdict.polarity == Polarity::kNeutral) {
      continue;
    }

    const spot::SynonymSet* set = spotter_.FindSet(spot.synset_id);
    SentimentMention m;
    m.doc_id = doc_id;
    m.subject = set != nullptr ? set->canonical : "?";
    m.synset_id = spot.synset_id;
    m.polarity = verdict.polarity;
    m.source = verdict.source;
    m.pattern = verdict.pattern;
    m.sentence_text =
        RangeText(tokens, ctx.sentence.begin_token, ctx.sentence.end_token);
    m.sentence_index = ctx.sentence_index;
    m.sentence_begin = tokens[ctx.sentence.begin_token].begin;
    m.sentence_end = tokens[ctx.sentence.end_token - 1].end;
    store->Add(std::move(m));
  }
}

AdHocSentimentMiner::AdHocSentimentMiner(
    const lexicon::SentimentLexicon* lexicon,
    const lexicon::PatternDatabase* patterns, const Config& config)
    : lexicon_(lexicon),
      patterns_(patterns),
      config_(config),
      analyzer_(lexicon, patterns, config.analyzer),
      ner_(config.ner) {}

void AdHocSentimentMiner::ProcessDocument(const std::string& doc_id,
                                          const std::string& body,
                                          SentimentStore* store) {
  text::TokenStream tokens = tokenizer_.Tokenize(body);
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  MineTokens(doc_id, tokens, spans, nullptr, store);
}

void AdHocSentimentMiner::ProcessDocument(const std::string& doc_id,
                                          const LinguisticAnalysis& analysis,
                                          SentimentStore* store) const {
  MineTokens(doc_id, analysis.tokens, analysis.sentences, &analysis, store);
}

void AdHocSentimentMiner::MineTokens(
    const std::string& doc_id, const text::TokenStream& tokens,
    const std::vector<text::SentenceSpan>& spans,
    const LinguisticAnalysis* analysis, SentimentStore* store) const {
  for (size_t s = 0; s < spans.size(); ++s) {
    const text::SentenceSpan& span = spans[s];
    std::vector<ner::NamedEntity> entities = ner_.SpotSentence(tokens, span);
    if (entities.empty()) continue;

    // Fallback-path parses intern into a sentence-local arena; `computed`
    // (declared after) is destroyed first, so the views never dangle.
    common::Arena parse_arena;
    common::StringInterner parse_interner(&parse_arena);
    std::vector<parse::SentenceParse> computed;
    if (analysis == nullptr) {
      std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, span);
      computed =
          sentence_analyzer_.AnalyzeClauses(tokens, span, tags, &parse_interner);
    }
    const std::vector<parse::SentenceParse>& clauses =
        analysis != nullptr ? analysis->sentence_clauses[s] : computed;

    for (const ner::NamedEntity& e : entities) {
      const parse::SentenceParse* parse_ptr = &clauses.front();
      for (const parse::SentenceParse& clause : clauses) {
        if (e.begin_token >= clause.span.begin_token &&
            e.begin_token < clause.span.end_token) {
          parse_ptr = &clause;
          break;
        }
      }
      SubjectSentiment verdict = analyzer_.AnalyzeSubject(
          tokens, *parse_ptr, e.begin_token, e.end_token);
      if (verdict.polarity == Polarity::kNeutral) continue;

      SentimentMention m;
      m.doc_id = doc_id;
      m.subject = e.text;
      m.synset_id = -1;
      m.polarity = verdict.polarity;
      m.source = verdict.source;
      m.pattern = verdict.pattern;
      m.sentence_text = RangeText(tokens, span.begin_token, span.end_token);
      m.sentence_index = s;
      m.sentence_begin = tokens[span.begin_token].begin;
      m.sentence_end = tokens[span.end_token - 1].end;
      store->Add(std::move(m));
    }
  }
}

}  // namespace wf::core
