#include "core/analysis.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::core {

size_t LinguisticAnalysis::ApproxBytes() const {
  size_t bytes = sizeof(LinguisticAnalysis);
  bytes += arena.bytes_reserved();  // body copy + interned strings
  bytes += tokens.size() * sizeof(text::Token);
  bytes += sentences.size() * sizeof(text::SentenceSpan);
  for (const auto& tags : sentence_tags) {
    bytes += tags.size() * sizeof(pos::PosTag) + sizeof(tags);
  }
  for (const auto& clauses : sentence_clauses) {
    bytes += sizeof(clauses);
    for (const parse::SentenceParse& p : clauses) {
      bytes += sizeof(parse::SentenceParse);
      bytes += p.chunks.size() * sizeof(parse::Chunk);
      bytes += p.tags.size() * sizeof(pos::PosTag);
      bytes += p.pps.size() * sizeof(parse::PpAttachment);
    }
  }
  return bytes;
}

std::shared_ptr<const LinguisticAnalysis> AnalyzeDocument(
    std::string_view body) {
  // The tagger's constructor builds the embedded lexicon, which is far too
  // expensive to pay per document. All four stages are const after
  // construction, so one shared instance serves every thread. Leaked on
  // purpose: miners may analyze during static destruction of tests.
  static const pos::PosTagger* const tagger = new pos::PosTagger();
  static const text::Tokenizer tokenizer{};
  static const text::SentenceSplitter splitter{};
  static const parse::SentenceAnalyzer analyzer{};

  auto analysis = std::make_shared<LinguisticAnalysis>();
  // Copy the body into the arena first: every token view slices this copy,
  // so the artifact is self-contained no matter how transient the caller's
  // buffer is (LSM reads hand us temporaries).
  analysis->body = analysis->arena.CopyString(body);
  // The interner is construction-only scaffolding — its bytes live in the
  // arena, its dedup set dies here.
  common::StringInterner interner(&analysis->arena);
  analysis->tokens = tokenizer.Tokenize(analysis->body);
  analysis->sentences = splitter.Split(analysis->tokens);
  analysis->sentence_tags.reserve(analysis->sentences.size());
  analysis->sentence_clauses.reserve(analysis->sentences.size());
  for (const text::SentenceSpan& span : analysis->sentences) {
    std::vector<pos::PosTag> tags = tagger->TagSentence(analysis->tokens, span);
    analysis->sentence_clauses.push_back(
        analyzer.AnalyzeClauses(analysis->tokens, span, tags, &interner));
    analysis->sentence_tags.push_back(std::move(tags));
  }
  return analysis;
}

AnalysisCache::AnalysisCache(const AnalysisCacheOptions& options)
    : options_(options) {
  size_t stripes = std::max<size_t>(1, options_.stripes);
  if (options_.max_entries > 0 && stripes > options_.max_entries) {
    stripes = options_.max_entries;
  }
  options_.stripes = stripes;
  per_stripe_capacity_ =
      options_.max_entries == 0
          ? 0
          : std::max<size_t>(1, options_.max_entries / stripes);
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void AnalysisCache::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    hits_ = nullptr;
    misses_ = nullptr;
    evictions_ = nullptr;
    entries_gauge_ = nullptr;
    return;
  }
  hits_ = metrics->GetCounter("analysis_cache/hits_total");
  misses_ = metrics->GetCounter("analysis_cache/misses_total");
  evictions_ = metrics->GetCounter("analysis_cache/evictions_total");
  entries_gauge_ = metrics->GetGauge("analysis_cache/entries");
}

AnalysisCache::Stripe& AnalysisCache::StripeFor(std::string_view key) {
  return *stripes_[common::Fnv1a64(key) % stripes_.size()];
}

void AnalysisCache::Count(obs::Counter* counter) const {
  if (counter != nullptr) counter->Add(1);
}

std::shared_ptr<const LinguisticAnalysis> AnalysisCache::Analyze(
    std::string_view key, std::string_view body) {
  if (per_stripe_capacity_ == 0) {
    Count(misses_);
    return AnalyzeDocument(body);
  }
  const uint64_t body_hash = common::Fnv1a64(body);
  Stripe& stripe = StripeFor(key);
  {
    common::MutexLock lock(stripe.mu);
    for (size_t i = 0; i < stripe.entries.size(); ++i) {
      Entry& e = stripe.entries[i];
      if (e.key != key) continue;
      if (e.body_hash == body_hash && e.body_size == body.size()) {
        // Move to front (most-recent) and serve the shared artifact.
        std::shared_ptr<const LinguisticAnalysis> hit = e.analysis;
        std::rotate(stripe.entries.begin(), stripe.entries.begin() + i,
                    stripe.entries.begin() + i + 1);
        Count(hits_);
        return hit;
      }
      // Same id, new body: the cached parse is stale — drop it and refill.
      stripe.entries.erase(stripe.entries.begin() + i);
      if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
      break;
    }
  }
  // Miss: compute outside the stripe lock so parallel workers never
  // serialize on each other's parses. A concurrent miss on the same key
  // computes twice and the later insert wins — identical bytes either way.
  Count(misses_);
  std::shared_ptr<const LinguisticAnalysis> fresh = AnalyzeDocument(body);
  {
    common::MutexLock lock(stripe.mu);
    for (size_t i = 0; i < stripe.entries.size(); ++i) {
      if (stripe.entries[i].key == key) {
        stripe.entries.erase(stripe.entries.begin() + i);
        if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
        break;
      }
    }
    if (stripe.entries.size() >= per_stripe_capacity_) {
      stripe.entries.pop_back();  // evict least-recently-used
      Count(evictions_);
      if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
    }
    Entry e;
    e.key.assign(key.data(), key.size());
    e.body_hash = body_hash;
    e.body_size = body.size();
    e.analysis = fresh;
    stripe.entries.insert(stripe.entries.begin(), std::move(e));
    if (entries_gauge_ != nullptr) entries_gauge_->Add(1);
  }
  return fresh;
}

void AnalysisCache::Clear() {
  int64_t dropped = 0;
  for (auto& stripe : stripes_) {
    common::MutexLock lock(stripe->mu);
    dropped += static_cast<int64_t>(stripe->entries.size());
    stripe->entries.clear();
  }
  if (entries_gauge_ != nullptr) entries_gauge_->Add(-dropped);
}

size_t AnalysisCache::size() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    common::MutexLock lock(stripe->mu);
    n += stripe->entries.size();
  }
  return n;
}

}  // namespace wf::core
