#ifndef WF_CORE_MINER_H_
#define WF_CORE_MINER_H_

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/analyzer.h"
#include "core/context.h"
#include "core/sentiment_store.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "ner/named_entity_spotter.h"
#include "pos/tagger.h"
#include "spot/disambiguator.h"
#include "spot/spotter.h"
#include "spot/tfidf.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::core {

// Mode A (Figure 2): sentiment mining with a predefined set of subjects.
// Pipeline per document: tokenize -> sentence-split -> spot subjects ->
// disambiguate -> build sentiment context -> parse -> analyze -> store.
class SentimentMiner {
 public:
  struct Config {
    AnalyzerOptions analyzer;
    ContextBuilder::Options context;
    bool use_disambiguator = true;
    // Record neutral verdicts too (needed for accuracy computation over
    // all test cases, as the paper's evaluation does).
    bool record_neutral = true;
    // Context-window rule (§3): when the spot's own sentence is neutral,
    // attribute a short verbless follow-up fragment ("Big mistake.") to
    // the spot. Off by default — it trades precision for recall.
    bool attribute_fragments = false;
  };

  // `lexicon` and `patterns` must outlive the miner.
  SentimentMiner(const lexicon::SentimentLexicon* lexicon,
                 const lexicon::PatternDatabase* patterns)
      : SentimentMiner(lexicon, patterns, Config{}) {}
  SentimentMiner(const lexicon::SentimentLexicon* lexicon,
                 const lexicon::PatternDatabase* patterns,
                 const Config& config);

  // Subject registration (spotter synonym sets + optional topic term sets
  // for disambiguation).
  void AddSubject(const spot::SynonymSet& subject);
  void AddTopicTerms(const spot::TopicTermSet& topic);

  // Corpus statistics for TF-IDF disambiguation; optional — without it the
  // miner builds stats incrementally from the processed documents.
  void SetCorpusStats(const spot::CorpusStats* stats) { external_stats_ = stats; }

  // Mines one document, appending mentions to `store`.
  void ProcessDocument(const std::string& doc_id, const std::string& body,
                       SentimentStore* store);
  // Same, over a precomputed linguistic-analysis artifact (must describe
  // the document's body) — skips re-tokenizing/tagging/parsing. Results
  // are byte-identical to the body-based overload.
  void ProcessDocument(const std::string& doc_id,
                       const LinguisticAnalysis& analysis,
                       SentimentStore* store);

  const Config& config() const { return config_; }

 private:
  // Shared implementation: `analysis` is null on the body-based path
  // (parses are then computed lazily per touched sentence).
  void MineTokens(const std::string& doc_id, const text::TokenStream& tokens,
                  const std::vector<text::SentenceSpan>& spans,
                  const LinguisticAnalysis* analysis, SentimentStore* store);

  const lexicon::SentimentLexicon* lexicon_;
  const lexicon::PatternDatabase* patterns_;
  Config config_;

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  parse::SentenceAnalyzer sentence_analyzer_;
  SentimentAnalyzer analyzer_;
  ContextBuilder context_builder_;
  spot::Spotter spotter_;
  spot::Disambiguator disambiguator_;
  spot::CorpusStats own_stats_;
  const spot::CorpusStats* external_stats_ = nullptr;
};

// Mode B (Figure 3): no predefined subjects — the named-entity spotter
// proposes subjects, every sentiment-bearing sentence is analyzed offline,
// and (entity, sentiment) results are meant to be indexed for query-time
// lookup (the platform layer does the indexing).
class AdHocSentimentMiner {
 public:
  struct Config {
    AnalyzerOptions analyzer;
    ner::NamedEntitySpotter::Options ner;
  };

  AdHocSentimentMiner(const lexicon::SentimentLexicon* lexicon,
                      const lexicon::PatternDatabase* patterns)
      : AdHocSentimentMiner(lexicon, patterns, Config{}) {}
  AdHocSentimentMiner(const lexicon::SentimentLexicon* lexicon,
                      const lexicon::PatternDatabase* patterns,
                      const Config& config);

  // Mines one document; every named entity in a sentence becomes a subject
  // candidate. Only non-neutral results are recorded (the index stores
  // sentiment-bearing occurrences).
  void ProcessDocument(const std::string& doc_id, const std::string& body,
                       SentimentStore* store);
  // Same, over a precomputed linguistic-analysis artifact (must describe
  // the document's body). Stateless across documents, so safe to call
  // concurrently for distinct documents.
  void ProcessDocument(const std::string& doc_id,
                       const LinguisticAnalysis& analysis,
                       SentimentStore* store) const;

 private:
  void MineTokens(const std::string& doc_id, const text::TokenStream& tokens,
                  const std::vector<text::SentenceSpan>& spans,
                  const LinguisticAnalysis* analysis,
                  SentimentStore* store) const;

  const lexicon::SentimentLexicon* lexicon_;
  const lexicon::PatternDatabase* patterns_;
  Config config_;

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  parse::SentenceAnalyzer sentence_analyzer_;
  SentimentAnalyzer analyzer_;
  ner::NamedEntitySpotter ner_;
};

}  // namespace wf::core

#endif  // WF_CORE_MINER_H_
