#ifndef WF_CORE_ANALYZER_H_
#define WF_CORE_ANALYZER_H_

#include <string>

#include "core/phrase_sentiment.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "text/token.h"

namespace wf::core {

struct AnalyzerOptions {
  // Sentence-level negation: a negative adverb in the main verb phrase
  // reverses the assigned sentiment (§4.2).
  bool handle_negation = true;
  // Contrastive-PP rule: a subject inside an "unlike X," PP receives the
  // reverse of the subject-phrase assignment; "like X," receives the same.
  bool contrastive_pp = true;
  // Fallback when no pattern matches: assign the subject's own NP phrase
  // polarity ("the excellent NR70 ..."). Conservative; on by default.
  bool local_np_fallback = true;
  // Extra (non-paper) fallback: assign whole-sentence lexical polarity when
  // nothing else matched. Off by default; enabling it approximates the
  // collocation baseline inside the miner (used in ablations).
  bool sentence_fallback = false;
};

// How a sentiment was derived (for explanations and ablation accounting).
enum class SentimentSource : uint8_t {
  kNone = 0,         // no assignment (neutral)
  kDirectPattern,    // pattern with fixed +/- polarity
  kTransferPattern,  // trans-verb pattern (source phrase polarity)
  kContrastivePp,    // unlike/like PP rule
  kLocalNp,          // subject NP's own modifiers
  kSentenceFallback,
  kCrossSentence,    // verbless follow-up fragment ("Big mistake.")
};

std::string_view SentimentSourceName(SentimentSource s);

// The verdict for one subject occurrence in one sentence.
struct SubjectSentiment {
  lexicon::Polarity polarity = lexicon::Polarity::kNeutral;
  SentimentSource source = SentimentSource::kNone;
  std::string pattern;  // textual form of the matched pattern, if any
};

// The sentiment analyzer of §4.2: given a parsed sentence and a subject
// spot, find the best matching predicate pattern and assign sentiment to
// the subject by semantic relationship analysis.
class SentimentAnalyzer {
 public:
  // Pointers must outlive the analyzer.
  SentimentAnalyzer(const lexicon::SentimentLexicon* lexicon,
                    const lexicon::PatternDatabase* patterns,
                    const AnalyzerOptions& options = AnalyzerOptions{});

  // Sentiment about the subject occupying tokens
  // [subject_begin, subject_end) of the parsed sentence.
  SubjectSentiment AnalyzeSubject(const text::TokenStream& tokens,
                                  const parse::SentenceParse& parse,
                                  size_t subject_begin,
                                  size_t subject_end) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  // Which component of the parse contains the subject; returns the
  // component kind and, for PP, the preposition. `component_chunk` receives
  // the chunk index (-1 if the subject is in no recognized component).
  struct SubjectLocation {
    bool in_sp = false;
    bool in_op = false;
    bool in_cp = false;
    int pp_index = -1;  // index into parse.pps, -1 if not in a PP
    int chunk = -1;
  };
  SubjectLocation LocateSubject(const parse::SentenceParse& parse,
                                size_t subject_begin,
                                size_t subject_end) const;

  // Evaluates the pattern's source phrase polarity (for trans patterns);
  // neutral when the source component is absent or carries no sentiment.
  lexicon::Polarity SourcePolarity(const text::TokenStream& tokens,
                                   const parse::SentenceParse& parse,
                                   const lexicon::SentimentPattern& pattern,
                                   size_t subject_begin,
                                   size_t subject_end) const;

  // Core matching: sentiment the predicate assigns to a given component
  // (identified the same way LocateSubject does).
  SubjectSentiment MatchPatterns(const text::TokenStream& tokens,
                                 const parse::SentenceParse& parse,
                                 const SubjectLocation& where,
                                 size_t subject_begin,
                                 size_t subject_end) const;

  bool IsPassive(const text::TokenStream& tokens,
                 const parse::SentenceParse& parse) const;

  const lexicon::SentimentLexicon* lexicon_;
  const lexicon::PatternDatabase* patterns_;
  AnalyzerOptions options_;
  PhraseSentimentScorer scorer_;
};

}  // namespace wf::core

#endif  // WF_CORE_ANALYZER_H_
