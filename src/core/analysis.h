#ifndef WF_CORE_ANALYSIS_H_
#define WF_CORE_ANALYSIS_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "parse/sentence_structure.h"
#include "pos/tagset.h"
#include "text/token.h"

namespace wf::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace wf::obs

namespace wf::core {

// The per-document linguistic-analysis artifact: everything the
// tokenize -> sentence-split -> POS-tag -> shallow-parse front half of the
// mining pipeline produces, computed once and shared by every miner that
// looks at the same document. Immutable after construction, so one artifact
// may be read concurrently from any number of mining workers.
//
// The artifact is a pure function of the document body (all stages are
// deterministic rule systems with fixed embedded resources), which is what
// makes caching it safe: a hit and a recompute are byte-identical.
//
// Memory layout (DESIGN.md §15): the artifact owns a bump arena holding a
// copy of the document body plus every interned string the front half
// produced. Token::text views slice the body copy; parse lemmas and
// prepositions are interner-owned views. The arena lives exactly as long
// as the artifact, so AnalysisCache handing out shared_ptrs keeps every
// view valid, and destruction frees the whole analysis in O(blocks).
// Non-copyable (the views would dangle); share via shared_ptr.
struct LinguisticAnalysis {
  common::Arena arena;    // owns body bytes + interned strings
  std::string_view body;  // arena-owned copy of the analyzed document body
  text::TokenStream tokens;
  std::vector<text::SentenceSpan> sentences;
  // Per sentence, aligned with that sentence's tokens — exactly what
  // pos::PosTagger::TagSentence returns for sentences[s].
  std::vector<std::vector<pos::PosTag>> sentence_tags;
  // Per sentence, the clause-level shallow parses — exactly what
  // parse::SentenceAnalyzer::AnalyzeClauses returns for sentences[s].
  std::vector<std::vector<parse::SentenceParse>> sentence_clauses;

  // Approximate heap footprint, used for cache accounting.
  size_t ApproxBytes() const;
};

// Computes the full artifact for one document body with the default
// tokenizer/splitter/tagger/parser configuration (the same defaults the
// core miners embed). Deterministic; never returns null.
std::shared_ptr<const LinguisticAnalysis> AnalyzeDocument(
    std::string_view body);

// Source of shared analysis artifacts for the mining pipeline. `key` is a
// stable document identity (entity id); `body` is the text the artifact
// must describe. Implementations must be safe to call concurrently and
// must return an artifact equal to AnalyzeDocument(body) — callers rely on
// cache hits being indistinguishable from recomputation.
class AnalysisProvider {
 public:
  virtual ~AnalysisProvider() = default;
  virtual std::shared_ptr<const LinguisticAnalysis> Analyze(
      std::string_view key, std::string_view body) = 0;
};

struct AnalysisCacheOptions {
  // Total cached artifacts across all stripes (per-stripe capacity is
  // max_entries / stripes, at least 1). 0 disables caching entirely —
  // every Analyze recomputes.
  size_t max_entries = 4096;
  // Lock stripes; contention-bound, not correctness-bound. Clamped to at
  // least 1.
  size_t stripes = 8;
};

// Size-bounded, lock-striped LRU cache of analysis artifacts, keyed by
// document id and validated against a hash of the body (a re-ingested
// entity with the same id but a new body recomputes instead of serving the
// stale parse). Artifacts are handed out as shared_ptr, so an eviction
// never invalidates an artifact a miner is still reading.
//
// Computation happens outside the stripe lock: concurrent misses on the
// same key may compute the artifact twice, but both results are identical
// (AnalyzeDocument is deterministic) and the second insert simply wins —
// never a correctness event, only a duplicated cost bounded by the worker
// count.
class AnalysisCache : public AnalysisProvider {
 public:
  AnalysisCache() : AnalysisCache(AnalysisCacheOptions{}) {}
  explicit AnalysisCache(const AnalysisCacheOptions& options);
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  // Mirrors hits/misses/evictions and the live entry count to `metrics`
  // under analysis_cache/... (nullptr detaches). Configuration, not
  // data-path: attach before mining starts. The registry must outlive the
  // attachment.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  std::shared_ptr<const LinguisticAnalysis> Analyze(
      std::string_view key, std::string_view body) override;

  // Drops every cached artifact (outstanding shared_ptrs stay valid).
  void Clear();

  size_t size() const;
  const AnalysisCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    uint64_t body_hash = 0;
    size_t body_size = 0;
    std::shared_ptr<const LinguisticAnalysis> analysis;
  };

  // One LRU stripe: entries_ is most-recent-first; index_ maps key to the
  // entry's position in entries_.
  struct Stripe {
    mutable common::Mutex mu;
    // small per-stripe capacity: O(n) moves ok
    std::vector<Entry> entries WF_GUARDED_BY(mu);
  };

  Stripe& StripeFor(std::string_view key);
  void Count(obs::Counter* counter) const;

  AnalysisCacheOptions options_;
  size_t per_stripe_capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Metric handles, resolved once by AttachMetrics (null when detached).
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
};

}  // namespace wf::core

#endif  // WF_CORE_ANALYSIS_H_
