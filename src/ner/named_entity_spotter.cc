#include "ner/named_entity_spotter.h"

#include <unordered_set>

#include "common/string_util.h"

namespace wf::ner {
namespace {

using ::wf::common::IsCapitalized;
using ::wf::common::ToLower;
using ::wf::text::Token;
using ::wf::text::TokenKind;

// Lowercase connectors allowed *inside* a capitalized run ("Bank of
// America", "Barnes and Noble"). They never begin or end an entity.
bool IsConnector(const std::string& lower) {
  return lower == "of" || lower == "and" || lower == "the" || lower == "de";
}

// Function words that disqualify a sentence-initial capitalized token from
// being an entity on its own.
const std::unordered_set<std::string>& CommonWordStoplist() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "the", "this", "that", "these", "those", "a", "an", "my", "your",
      "his", "her", "its", "our", "their", "it", "he", "she", "we", "they",
      "i", "you", "there", "here", "when", "while", "although", "after",
      "before", "because", "if", "unless", "however", "unfortunately",
      "fortunately", "also", "but", "and", "or", "so", "yet", "as", "in",
      "on", "at", "for", "with", "from", "to", "by", "one", "some", "most",
      "many", "both", "each", "every", "overall", "unlike", "like", "since",
      "despite", "not", "no", "what", "why", "how", "where", "who",
      "later", "meanwhile", "finally", "eventually", "instead", "still",
      "moreover", "nevertheless", "nonetheless", "suddenly", "recently",
      "luckily", "sadly", "honestly", "now", "then", "next", "last",
      "first", "second", "third", "maybe", "perhaps", "today", "yesterday",
      "tomorrow", "sometimes", "usually", "often", "once", "again",
      "sure", "well", "please", "page", "two", "three",
  };
  return *kSet;
}

// Titles that bind to the following capitalized word ("Prof. Wilson").
bool IsTitle(const std::string& lower) {
  return lower == "mr." || lower == "mrs." || lower == "ms." ||
         lower == "dr." || lower == "prof." || lower == "sen." ||
         lower == "rep." || lower == "gov." || lower == "gen." ||
         lower == "capt." || lower == "lt." || lower == "col." ||
         lower == "sgt." || lower == "st.";
}

// Words that trigger a split inside a candidate (prepositions and
// conjunctions per the paper's heuristic). "of"/"and" split when they
// separate two capitalized halves that each stand alone; the connector
// itself is dropped.
bool IsSplitWord(const std::string& lower) {
  return lower == "of" || lower == "and" || lower == "in" || lower == "at" ||
         lower == "for" || lower == "from" || lower == "with" ||
         lower == "on" || lower == "by" || lower == "or" || lower == "the" ||
         lower == "de";
}

bool LooksCapitalizedWord(const Token& tok) {
  return tok.kind == TokenKind::kWord && IsCapitalized(tok.text);
}

}  // namespace

NamedEntitySpotter::NamedEntitySpotter(const Options& options)
    : options_(options) {}

std::vector<NamedEntity> NamedEntitySpotter::SpotSentence(
    const text::TokenStream& tokens, const text::SentenceSpan& span) const {
  std::vector<NamedEntity> out;

  size_t i = span.begin_token;
  while (i < span.end_token) {
    const Token& tok = tokens[i];
    if (!LooksCapitalizedWord(tok)) {
      ++i;
      continue;
    }

    // Grow the candidate: capitalized words, titles, possessive 's, and
    // lowercase connectors followed by another capitalized word.
    size_t begin = i;
    size_t end = i + 1;
    while (end < span.end_token) {
      const Token& next = tokens[end];
      if (LooksCapitalizedWord(next)) {
        ++end;
        continue;
      }
      std::string lower = ToLower(next.text);
      if ((IsConnector(lower) || lower == "'s") && end + 1 < span.end_token &&
          LooksCapitalizedWord(tokens[end + 1])) {
        end += 2;
        continue;
      }
      break;
    }

    // Split heuristics: break at prepositions/conjunctions/possessives.
    std::vector<std::pair<size_t, size_t>> pieces;
    size_t piece_begin = begin;
    for (size_t j = begin; j < end; ++j) {
      std::string lower = ToLower(tokens[j].text);
      bool split_here =
          (!LooksCapitalizedWord(tokens[j]) && IsSplitWord(lower)) ||
          lower == "'s";
      if (split_here) {
        if (j > piece_begin) pieces.emplace_back(piece_begin, j);
        piece_begin = j + 1;
      }
    }
    if (end > piece_begin) pieces.emplace_back(piece_begin, end);

    for (auto [pb, pe] : pieces) {
      // Trim connectors that ended up at the edges.
      while (pb < pe && !LooksCapitalizedWord(tokens[pb])) ++pb;
      while (pe > pb && !LooksCapitalizedWord(tokens[pe - 1])) --pe;
      if (pe - pb < options_.min_tokens || pe == pb) continue;

      // Sentence-initial single common word: skip.
      if (options_.filter_sentence_initial_common && pb == span.begin_token &&
          pe - pb == 1 &&
          CommonWordStoplist().count(ToLower(tokens[pb].text)) > 0) {
        continue;
      }
      // A bare title is not an entity.
      if (pe - pb == 1 && IsTitle(ToLower(tokens[pb].text))) continue;

      std::string name;
      for (size_t j = pb; j < pe; ++j) {
        if (!name.empty()) name += ' ';
        name += tokens[j].text;
      }
      out.push_back(NamedEntity{std::move(name), pb, pe});
    }
    i = end;
  }
  return out;
}

std::vector<NamedEntity> NamedEntitySpotter::Spot(
    const text::TokenStream& tokens,
    const std::vector<text::SentenceSpan>& spans) const {
  std::vector<NamedEntity> out;
  for (const text::SentenceSpan& span : spans) {
    std::vector<NamedEntity> sentence = SpotSentence(tokens, span);
    out.insert(out.end(), sentence.begin(), sentence.end());
  }
  return out;
}

}  // namespace wf::ner
