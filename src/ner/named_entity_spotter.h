#ifndef WF_NER_NAMED_ENTITY_SPOTTER_H_
#define WF_NER_NAMED_ENTITY_SPOTTER_H_

#include <string>
#include <vector>

#include "text/token.h"

namespace wf::ner {

// A named-entity candidate: tokens [begin, end) of the stream.
struct NamedEntity {
  std::string text;  // normalized surface ("Prof. Wilson")
  size_t begin_token = 0;
  size_t end_token = 0;

  friend bool operator==(const NamedEntity& a, const NamedEntity& b) {
    return a.text == b.text && a.begin_token == b.begin_token &&
           a.end_token == b.end_token;
  }
};

// The paper's named-entity spotter (§3): collects sequences of capitalized
// tokens, allowing the special lowercase connectors "and" and "of" inside a
// candidate, then applies split heuristics — a candidate containing a
// conjunction, preposition, or possessive is split into separate entities
// ("Prof. Wilson of American University" -> "Prof. Wilson" + "American
// University"). Sentence-initial capitalized common words are skipped via a
// small function-word stoplist.
class NamedEntitySpotter {
 public:
  struct Options {
    // Minimum tokens a candidate must keep after splitting.
    size_t min_tokens = 1;
    // Drop sentence-initial single capitalized tokens whose lowercase form
    // is a common word (reduces "The"/"This" noise).
    bool filter_sentence_initial_common = true;
  };

  NamedEntitySpotter() : NamedEntitySpotter(Options{}) {}
  explicit NamedEntitySpotter(const Options& options);

  // Spots entities in one sentence.
  std::vector<NamedEntity> SpotSentence(const text::TokenStream& tokens,
                                        const text::SentenceSpan& span) const;

  // Spots entities in a whole stream given its sentence segmentation.
  std::vector<NamedEntity> Spot(
      const text::TokenStream& tokens,
      const std::vector<text::SentenceSpan>& spans) const;

 private:
  Options options_;
};

}  // namespace wf::ner

#endif  // WF_NER_NAMED_ENTITY_SPOTTER_H_
