#ifndef WF_OBS_TRACE_H_
#define WF_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace wf::obs {

// Lightweight deterministic tracing. A Tracer hands out Spans whose
// trace/span ids are pure functions of (tracer seed, trace sequence,
// parent span, span name, sibling sequence) — no wall clock, no process
// randomness — so two identically-seeded runs export byte-identical
// traces, and a scatter's concurrently-created child spans get the same
// ids regardless of thread interleaving (sibling names on a scatter are
// the distinct target service names).
//
// Spans carry no timestamps by design: durations belong in timing
// histograms (obs/metrics.h), where nondeterminism is quarantined; a
// span's identity and attributes must replay exactly.

// Identifies a span within a trace. Propagated across the Vinci bus as
// two extra request fields (kTraceIdKey / kSpanIdKey) in the platform's
// key=value wire format; handlers that never look at them are unaffected.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0 && span_id != 0; }
};

// Reserved request-metadata keys for context propagation over the bus.
inline constexpr char kTraceIdKey[] = "wf-trace";
inline constexpr char kSpanIdKey[] = "wf-span";

// 16 lowercase hex digits; the wire spelling of an id.
std::string IdToHex(uint64_t id);
// Inverse; returns 0 (the invalid id) for anything that is not exactly
// 16 hex digits.
uint64_t IdFromHex(const std::string& hex);

class Tracer;

// One span in flight. Movable, not copyable; Finish() records it with its
// tracer (the destructor finishes an unfinished span, so early returns on
// error paths still record). A default-constructed or moved-from span is
// inert: every operation is a no-op.
class Span {
 public:
  Span() = default;
  ~Span() { Finish(); }
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }
  SpanContext context() const { return context_; }

  void SetAttr(const std::string& key, const std::string& value);
  void Finish();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanContext context_;
  uint64_t parent_span_id_ = 0;
  std::string name_;
  std::map<std::string, std::string> attrs_;  // sorted for export
};

// Appends the context-propagation fields to a request's key=value pairs.
void AppendContext(const SpanContext& context,
                   std::vector<std::pair<std::string, std::string>>* pairs);

class Tracer {
 public:
  explicit Tracer(uint64_t seed) : seed_(seed) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // A new root span in a new trace.
  Span StartTrace(const std::string& name);
  // A child span under `parent`; inert when `parent` is invalid, so call
  // sites forwarding an absent context need no branches.
  Span StartSpan(const SpanContext& parent, const std::string& name);

  size_t finished_count() const;

  // One line per finished span, sorted by (trace, span, name):
  //   trace=<hex> span=<hex> parent=<hex|-> name=<name> [k=v ...]
  std::string ExportText() const;
  // JSON array of span objects in the same order.
  std::string ExportJson() const;

  void Clear();

 private:
  friend class Span;
  struct FinishedSpan {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    std::string name;
    std::map<std::string, std::string> attrs;
  };

  void Record(Span* span);
  std::vector<FinishedSpan> SortedFinished() const;

  const uint64_t seed_;
  std::atomic<uint64_t> trace_seq_{0};
  mutable common::Mutex mu_;
  // Per (parent span, name) sibling sequence, so two sequential same-name
  // children (e.g. retries of one fetch) still get distinct ids.
  std::map<std::pair<uint64_t, std::string>, uint64_t> sibling_seq_
      WF_GUARDED_BY(mu_);
  std::vector<FinishedSpan> finished_ WF_GUARDED_BY(mu_);
};

}  // namespace wf::obs

#endif  // WF_OBS_TRACE_H_
