#ifndef WF_OBS_METRICS_H_
#define WF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace wf::obs {

// wf_obs metrics: the measurement layer above the simulated WebFountain
// platform. Components record into a MetricsRegistry through three metric
// kinds; readers take a MetricsSnapshot on demand and export it as text,
// JSON, or the mergeable wire form that `wfstats` services ship over the
// Vinci bus.
//
// Determinism contract (a repo invariant): every metric except
// wall-clock-fed histograms (created with `timing = true`) must replay
// byte-identically from the same seed — tests golden-compare exports with
// `ExportOptions::include_timings = false`. Snapshots order metrics by
// name, so two registries that saw the same events export the same bytes
// regardless of registration or thread order.

// Monotonically increasing event count. Add() is lock-free; handles
// returned by MetricsRegistry stay valid for the registry's lifetime, so
// hot paths can cache them.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A level that moves both ways (entities in a store, breaker state).
// Merge across nodes sums gauges, so per-node levels roll up to totals.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
// plus an implicit overflow bucket, so two histograms with equal bounds
// merge by adding counts — which is what makes cluster roll-ups and the
// merge-associativity property possible. Record() is lock-free.
class Histogram {
 public:
  // `timing = true` marks a wall-clock-fed histogram, the one sanctioned
  // source of nondeterminism; deterministic exports exclude it.
  Histogram(std::vector<uint64_t> bounds, bool timing);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  bool timing() const { return timing_; }
  uint64_t count() const;

 private:
  friend class MetricsRegistry;
  const std::vector<uint64_t> bounds_;
  const bool timing_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1 buckets
  std::atomic<uint64_t> sum_{0};
};

// Common bucket layouts.
std::vector<uint64_t> ExponentialBounds(uint64_t start, double factor,
                                        size_t count);
std::vector<uint64_t> LinearBounds(uint64_t start, uint64_t step,
                                   size_t count);
// 1us .. ~8.4s in powers of two — the default for latency histograms.
const std::vector<uint64_t>& DefaultLatencyBoundsUs();
// 0..15 retries/attempts, one bucket each.
const std::vector<uint64_t>& DefaultRetryBounds();

struct HistogramSnapshot {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  uint64_t count = 0;            // sum of counts
  uint64_t sum = 0;              // sum of recorded values
  bool timing = false;

  // Upper bound of the bucket containing the q-th quantile (q in [0, 1]),
  // i.e. a value v with P(X <= v) >= q under the recorded distribution.
  // Overflow-bucket hits report bounds.back() + 1 (the histogram only
  // knows "past the last bound"). 0 when the histogram is empty. This is
  // what SLO rows report: p99 <= bound is exact, the true p99 may be lower
  // within the bucket.
  uint64_t ApproxQuantile(double q) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

struct ExportOptions {
  // When false, histograms created with `timing = true` are omitted — the
  // deterministic view that golden tests byte-compare.
  bool include_timings = true;
};

// A point-in-time copy of a registry (weakly consistent under concurrent
// writers; exact when writers are quiescent). std::map keys keep every
// export deterministically ordered by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Adds `other` into this snapshot: counters/gauges/histogram buckets sum;
  // a histogram present on both sides must have identical bounds
  // (FailedPrecondition otherwise, with this snapshot unchanged).
  common::Status MergeFrom(const MetricsSnapshot& other);

  // Convenience readers; 0 when the metric is absent.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  // nullptr when absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  // One line per metric:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   histogram <name> count=<c> sum=<s> buckets=<b>:<c>,...,inf:<c>
  std::string ExportText(const ExportOptions& options = {}) const;
  // {"counters":{...},"gauges":{...},"histograms":{...}} with sorted keys.
  std::string ExportJson(const ExportOptions& options = {}) const;

  // Mergeable machine form shipped by `wfstats` services. Line-oriented and
  // safe to embed as a value in the platform's key=value wire format
  // because metric names never contain spaces or newlines (enforced at
  // registration).
  std::string ToWire() const;
  static common::Result<MetricsSnapshot> FromWire(const std::string& wire);
};

// Registry of named metrics. Get* registers on first use and returns a
// stable handle; lookups are lock-striped by name hash so concurrent hot
// paths touching different metrics rarely contend. Metric names must match
// [A-Za-z0-9_/.:-]+ (no spaces, '=', or newlines — they travel through the
// bus wire format verbatim).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Const because recording is logically read-only on the registry: the
  // stripes are mutable so const holders (e.g. a const Cluster running a
  // query) can still count events.
  Counter* GetCounter(const std::string& name) const;
  Gauge* GetGauge(const std::string& name) const;
  // Re-getting an existing histogram checks that `bounds` and `timing`
  // match the first registration (programming error otherwise).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<uint64_t>& bounds,
                          bool timing = false) const;

  MetricsSnapshot Snapshot() const;

  static bool IsValidMetricName(const std::string& name);

 private:
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable common::Mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters
        WF_GUARDED_BY(mu);
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges
        WF_GUARDED_BY(mu);
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms
        WF_GUARDED_BY(mu);
  };

  Stripe& StripeFor(const std::string& name) const;

  mutable std::array<Stripe, kStripes> stripes_;
};

// The process-wide registry, for components with no obvious owner (each
// simulated node/bus/service owns its own registry instead, so one process
// can host a whole cluster without the shards sharing metrics).
MetricsRegistry& ProcessRegistry();

// JSON string escaping shared by the obs exporters and bench_util.
std::string JsonEscape(const std::string& s);

}  // namespace wf::obs

#endif  // WF_OBS_METRICS_H_
