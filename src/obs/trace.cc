#include "obs/trace.h"

#include <algorithm>

#include "common/hash.h"
#include "obs/metrics.h"

namespace wf::obs {

namespace {

// Domain-separation constants mixed into the id derivations.
constexpr uint64_t kTraceDomain = 0x77662d7472616365ULL;  // "wf-trace"
constexpr uint64_t kRootDomain = 0x77662d726f6f7400ULL;   // "wf-root"

uint64_t NonZero(uint64_t id) { return id == 0 ? 1 : id; }

}  // namespace

std::string IdToHex(uint64_t id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[id & 0xf];
    id >>= 4;
  }
  return out;
}

uint64_t IdFromHex(const std::string& hex) {
  if (hex.size() != 16) return 0;
  uint64_t id = 0;
  for (char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return 0;
    }
    id = (id << 4) | digit;
  }
  return id;
}

// --- Span -------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    context_ = other.context_;
    parent_span_id_ = other.parent_span_id_;
    name_ = std::move(other.name_);
    attrs_ = std::move(other.attrs_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::SetAttr(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  attrs_[key] = value;
}

void Span::Finish() {
  if (tracer_ == nullptr) return;
  tracer_->Record(this);
  tracer_ = nullptr;
}

void AppendContext(const SpanContext& context,
                   std::vector<std::pair<std::string, std::string>>* pairs) {
  if (!context.valid()) return;
  pairs->emplace_back(kTraceIdKey, IdToHex(context.trace_id));
  pairs->emplace_back(kSpanIdKey, IdToHex(context.span_id));
}

// --- Tracer -----------------------------------------------------------------

Span Tracer::StartTrace(const std::string& name) {
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Span span;
  span.tracer_ = this;
  span.context_.trace_id =
      NonZero(common::HashCombine(seed_, common::HashCombine(kTraceDomain, seq)));
  span.context_.span_id =
      NonZero(common::HashCombine(span.context_.trace_id, kRootDomain));
  span.parent_span_id_ = 0;
  span.name_ = name;
  return span;
}

Span Tracer::StartSpan(const SpanContext& parent, const std::string& name) {
  if (!parent.valid()) return Span();
  uint64_t seq;
  {
    common::MutexLock lock(mu_);
    seq = ++sibling_seq_[{parent.span_id, name}];
  }
  Span span;
  span.tracer_ = this;
  span.context_.trace_id = parent.trace_id;
  span.context_.span_id = NonZero(common::HashCombine(
      parent.span_id, common::HashCombine(common::Fnv1a64(name), seq)));
  span.parent_span_id_ = parent.span_id;
  span.name_ = name;
  return span;
}

void Tracer::Record(Span* span) {
  FinishedSpan finished;
  finished.trace_id = span->context_.trace_id;
  finished.span_id = span->context_.span_id;
  finished.parent_span_id = span->parent_span_id_;
  finished.name = std::move(span->name_);
  finished.attrs = std::move(span->attrs_);
  common::MutexLock lock(mu_);
  finished_.push_back(std::move(finished));
}

size_t Tracer::finished_count() const {
  common::MutexLock lock(mu_);
  return finished_.size();
}

void Tracer::Clear() {
  common::MutexLock lock(mu_);
  finished_.clear();
  sibling_seq_.clear();
}

std::vector<Tracer::FinishedSpan> Tracer::SortedFinished() const {
  std::vector<FinishedSpan> spans;
  {
    common::MutexLock lock(mu_);
    spans = finished_;
  }
  // Ids are derivation-deterministic, so this order is stable across runs
  // even though finish order (thread interleaving) is not.
  std::sort(spans.begin(), spans.end(),
            [](const FinishedSpan& a, const FinishedSpan& b) {
              return std::tie(a.trace_id, a.span_id, a.name) <
                     std::tie(b.trace_id, b.span_id, b.name);
            });
  return spans;
}

std::string Tracer::ExportText() const {
  std::string out;
  for (const FinishedSpan& span : SortedFinished()) {
    out += "trace=" + IdToHex(span.trace_id);
    out += " span=" + IdToHex(span.span_id);
    out += " parent=";
    out += span.parent_span_id == 0 ? "-" : IdToHex(span.parent_span_id);
    out += " name=" + span.name;
    for (const auto& [key, value] : span.attrs) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

std::string Tracer::ExportJson() const {
  std::string out = "[";
  bool first = true;
  for (const FinishedSpan& span : SortedFinished()) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace\":\"" + IdToHex(span.trace_id) + "\"";
    out += ",\"span\":\"" + IdToHex(span.span_id) + "\"";
    out += ",\"parent\":";
    out += span.parent_span_id == 0
               ? "null"
               : "\"" + IdToHex(span.parent_span_id) + "\"";
    out += ",\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"attrs\":{";
    bool first_attr = true;
    for (const auto& [key, value] : span.attrs) {
      if (!first_attr) out += ',';
      first_attr = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}";
  }
  out += "]";
  return out;
}

}  // namespace wf::obs
