#include "obs/timer.h"

#include <chrono>

namespace wf::obs {

// wf_obs is the sanctioned home for the raw clock read; everything in
// src/platform goes through this function (the platform-raw-timing rule
// only patrols src/platform, so no suppression is needed here).
uint64_t MonotonicNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace wf::obs
