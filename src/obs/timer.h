#ifndef WF_OBS_TIMER_H_
#define WF_OBS_TIMER_H_

#include <cstdint>

#include "obs/metrics.h"

namespace wf::obs {

// The one sanctioned monotonic-clock read outside wf_obs: platform code
// must time through this (or ScopedTimer) rather than touching
// std::chrono::steady_clock directly, so every duration measurement flows
// through a single, instrumentable code path (enforced by wflint's
// platform-raw-timing rule).
uint64_t MonotonicNowUs();

// Records the scope's wall-clock duration (µs) into a histogram on
// destruction. The histogram should be created with `timing = true`; a
// null histogram makes the timer a no-op, so call sites need no branches
// when metrics are not attached.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_us_(MonotonicNowUs()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedUs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedUs() const { return MonotonicNowUs() - start_us_; }

 private:
  Histogram* histogram_;
  uint64_t start_us_;
};

}  // namespace wf::obs

#endif  // WF_OBS_TIMER_H_
