#include "obs/metrics.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace wf::obs {

using ::wf::common::Status;

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds, bool timing)
    : bounds_(std::move(bounds)), timing_(timing), counts_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    WF_CHECK(bounds_[i - 1] < bounds_[i]) << "histogram bounds not ascending";
  }
  // vector's count constructor default-constructs the atomics, and
  // pre-P0883 standard libraries leave a default-constructed atomic
  // uninitialized — zero them before the first Record.
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  // First bound >= value; past-the-end means the overflow bucket.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> ExponentialBounds(uint64_t start, double factor,
                                        size_t count) {
  WF_CHECK(start > 0 && factor > 1.0);
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  double b = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    uint64_t bound = static_cast<uint64_t>(b);
    if (!bounds.empty() && bound <= bounds.back()) bound = bounds.back() + 1;
    bounds.push_back(bound);
    b *= factor;
  }
  return bounds;
}

std::vector<uint64_t> LinearBounds(uint64_t start, uint64_t step,
                                   size_t count) {
  WF_CHECK(step > 0);
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) bounds.push_back(start + i * step);
  return bounds;
}

const std::vector<uint64_t>& DefaultLatencyBoundsUs() {
  static const std::vector<uint64_t>* kBounds =
      new std::vector<uint64_t>(ExponentialBounds(1, 2.0, 24));
  return *kBounds;
}

const std::vector<uint64_t>& DefaultRetryBounds() {
  static const std::vector<uint64_t>* kBounds =
      new std::vector<uint64_t>(LinearBounds(0, 1, 16));
  return *kBounds;
}

// --- MetricsSnapshot --------------------------------------------------------

uint64_t HistogramSnapshot::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it bounds the quantile from above.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < q * static_cast<double>(count) || rank == 0) ++rank;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      if (i < bounds.size()) return bounds[i];
      // Overflow bucket: all the histogram knows is "past the last bound".
      return bounds.empty() ? 0 : bounds.back() + 1;
    }
  }
  return bounds.empty() ? 0 : bounds.back() + 1;
}

common::Status MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  // Validate first so a bounds mismatch leaves this snapshot untouched.
  for (const auto& [name, hist] : other.histograms) {
    auto it = histograms.find(name);
    if (it != histograms.end() && it->second.bounds != hist.bounds) {
      return Status::FailedPrecondition(
          "histogram bounds mismatch merging: " + name);
    }
  }
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, hist);
    if (inserted) continue;
    HistogramSnapshot& mine = it->second;
    for (size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += hist.counts[i];
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
    mine.timing = mine.timing || hist.timing;
  }
  return Status::Ok();
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

std::string MetricsSnapshot::ExportText(const ExportOptions& options) const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "counter " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    if (hist.timing && !options.include_timings) continue;
    out += "histogram " + name + " count=" + std::to_string(hist.count) +
           " sum=" + std::to_string(hist.sum) + " buckets=";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += i < hist.bounds.size() ? std::to_string(hist.bounds[i]) : "inf";
      out += ':';
      out += std::to_string(hist.counts[i]);
    }
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ExportJson(const ExportOptions& options) const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (hist.timing && !options.include_timings) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"timing\":";
    out += hist.timing ? "true" : "false";
    out += ",\"count\":" + std::to_string(hist.count);
    out += ",\"sum\":" + std::to_string(hist.sum);
    out += ",\"bounds\":[";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(hist.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(hist.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

std::string JoinU64(const std::vector<uint64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseU64List(const std::string& s, std::vector<uint64_t>* out) {
  if (s == "-") return true;  // the explicit empty-list marker
  for (const std::string& piece : common::SplitExact(s, ",")) {
    uint64_t v = 0;
    if (!ParseU64(piece, &v)) return false;
    out->push_back(v);
  }
  return true;
}

}  // namespace

std::string MetricsSnapshot::ToWire() const {
  // `c <name> <value>` / `g <name> <value>` /
  // `h <name> <timing:0|1> <bounds|-> <counts> <sum>`, one per line.
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "c " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "g " + name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += "h " + name + (hist.timing ? " 1 " : " 0 ");
    out += hist.bounds.empty() ? "-" : JoinU64(hist.bounds);
    out += ' ';
    out += JoinU64(hist.counts);
    out += ' ';
    out += std::to_string(hist.sum);
    out += '\n';
  }
  return out;
}

common::Result<MetricsSnapshot> MetricsSnapshot::FromWire(
    const std::string& wire) {
  MetricsSnapshot snap;
  for (const std::string& line : common::SplitExact(wire, "\n")) {
    if (line.empty()) continue;
    std::vector<std::string> parts = common::SplitExact(line, " ");
    auto corrupt = [&line] {
      return Status::Corruption("bad wfstats wire line: " + line);
    };
    if (parts.size() < 3 || !MetricsRegistry::IsValidMetricName(parts[1])) {
      return corrupt();
    }
    if (parts[0] == "c" && parts.size() == 3) {
      uint64_t value = 0;
      if (!ParseU64(parts[2], &value)) return corrupt();
      snap.counters[parts[1]] += value;
    } else if (parts[0] == "g" && parts.size() == 3) {
      int64_t value = 0;
      if (!ParseI64(parts[2], &value)) return corrupt();
      snap.gauges[parts[1]] += value;
    } else if (parts[0] == "h" && parts.size() == 6) {
      HistogramSnapshot hist;
      if (parts[2] != "0" && parts[2] != "1") return corrupt();
      hist.timing = parts[2] == "1";
      if (!ParseU64List(parts[3], &hist.bounds) ||
          !ParseU64List(parts[4], &hist.counts) ||
          !ParseU64(parts[5], &hist.sum)) {
        return corrupt();
      }
      if (hist.counts.size() != hist.bounds.size() + 1) return corrupt();
      for (uint64_t c : hist.counts) hist.count += c;
      snap.histograms[parts[1]] = std::move(hist);
    } else {
      return corrupt();
    }
  }
  return snap;
}

// --- MetricsRegistry --------------------------------------------------------

bool MetricsRegistry::IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!(common::IsAsciiAlnum(c) || c == '_' || c == '/' || c == '.' ||
          c == ':' || c == '-')) {
      return false;
    }
  }
  return true;
}

MetricsRegistry::Stripe& MetricsRegistry::StripeFor(
    const std::string& name) const {
  return stripes_[common::Fnv1a64(name) % kStripes];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) const {
  WF_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  Stripe& stripe = StripeFor(name);
  common::MutexLock lock(stripe.mu);
  auto& slot = stripe.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) const {
  WF_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  Stripe& stripe = StripeFor(name);
  common::MutexLock lock(stripe.mu);
  auto& slot = stripe.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<uint64_t>& bounds,
                                         bool timing) const {
  WF_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  Stripe& stripe = StripeFor(name);
  common::MutexLock lock(stripe.mu);
  auto& slot = stripe.histograms[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds, timing);
  } else {
    WF_CHECK(slot->bounds() == bounds && slot->timing() == timing)
        << "histogram re-registered with different shape: " << name;
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(stripe.mu);
    for (const auto& [name, counter] : stripe.counters) {
      snap.counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : stripe.gauges) {
      snap.gauges[name] = gauge->value();
    }
    for (const auto& [name, hist] : stripe.histograms) {
      HistogramSnapshot h;
      h.bounds = hist->bounds_;
      h.timing = hist->timing_;
      h.counts.reserve(hist->counts_.size());
      for (const auto& c : hist->counts_) {
        uint64_t v = c.load(std::memory_order_relaxed);
        h.counts.push_back(v);
        h.count += v;
      }
      h.sum = hist->sum_.load(std::memory_order_relaxed);
      snap.histograms.emplace(name, std::move(h));
    }
  }
  return snap;
}

MetricsRegistry& ProcessRegistry() {
  static MetricsRegistry* kRegistry = new MetricsRegistry();
  return *kRegistry;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace wf::obs
