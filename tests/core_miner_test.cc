#include <gtest/gtest.h>

#include "core/context.h"
#include "core/miner.h"
#include "core/phrase_sentiment.h"
#include "core/sentiment_store.h"
#include "tests/test_util.h"

namespace wf::core {
namespace {

using lexicon::Polarity;

// --- ContextBuilder ----------------------------------------------------------------

TEST(ContextBuilderTest, FindsContainingSentence) {
  std::vector<text::SentenceSpan> spans{{0, 5}, {5, 12}, {12, 20}};
  ContextBuilder builder;
  SentimentContext ctx;
  ASSERT_TRUE(builder.Build(spans, 7, &ctx));
  EXPECT_EQ(ctx.sentence_index, 1u);
  EXPECT_EQ(ctx.window_begin_token, 5u);
  EXPECT_EQ(ctx.window_end_token, 12u);
}

TEST(ContextBuilderTest, ExtraSentencesWindow) {
  std::vector<text::SentenceSpan> spans{{0, 5}, {5, 12}, {12, 20}};
  ContextBuilder::Options options;
  options.extra_sentences = 1;
  ContextBuilder builder(options);
  SentimentContext ctx;
  ASSERT_TRUE(builder.Build(spans, 7, &ctx));
  EXPECT_EQ(ctx.window_begin_token, 0u);
  EXPECT_EQ(ctx.window_end_token, 20u);
}

TEST(ContextBuilderTest, WindowClampedAtEdges) {
  std::vector<text::SentenceSpan> spans{{0, 5}, {5, 12}};
  ContextBuilder::Options options;
  options.extra_sentences = 3;
  ContextBuilder builder(options);
  SentimentContext ctx;
  ASSERT_TRUE(builder.Build(spans, 0, &ctx));
  EXPECT_EQ(ctx.window_begin_token, 0u);
  EXPECT_EQ(ctx.window_end_token, 12u);
}

TEST(ContextBuilderTest, TokenOutsideEverySentence) {
  std::vector<text::SentenceSpan> spans{{0, 5}};
  ContextBuilder builder;
  SentimentContext ctx;
  EXPECT_FALSE(builder.Build(spans, 9, &ctx));
}

// --- SentimentStore ---------------------------------------------------------------

SentimentMention Mention(const std::string& doc, const std::string& subject,
                         Polarity polarity) {
  SentimentMention m;
  m.doc_id = doc;
  m.subject = subject;
  m.polarity = polarity;
  return m;
}

TEST(SentimentStoreTest, AggregatesBySubject) {
  SentimentStore store;
  store.Add(Mention("d1", "battery", Polarity::kPositive));
  store.Add(Mention("d1", "battery", Polarity::kNegative));
  store.Add(Mention("d2", "battery", Polarity::kPositive));
  store.Add(Mention("d2", "flash", Polarity::kNeutral));

  SentimentAggregate agg = store.ForSubject("battery");
  EXPECT_EQ(agg.positive, 2u);
  EXPECT_EQ(agg.negative, 1u);
  EXPECT_EQ(agg.neutral, 0u);
  EXPECT_NEAR(agg.PositiveShare(), 2.0 / 3.0, 1e-9);
}

TEST(SentimentStoreTest, PageAggregates) {
  SentimentStore store;
  store.Add(Mention("d1", "battery", Polarity::kPositive));
  store.Add(Mention("d1", "battery", Polarity::kPositive));
  store.Add(Mention("d2", "battery", Polarity::kNegative));
  store.Add(Mention("d3", "battery", Polarity::kPositive));
  store.Add(Mention("d3", "battery", Polarity::kNegative));

  SentimentStore::PageAggregate pages = store.PagesForSubject("battery");
  EXPECT_EQ(pages.pages, 3u);
  EXPECT_EQ(pages.pages_positive, 2u);
  EXPECT_EQ(pages.pages_negative, 2u);
}

TEST(SentimentStoreTest, SubjectsSorted) {
  SentimentStore store;
  store.Add(Mention("d", "zoom", Polarity::kPositive));
  store.Add(Mention("d", "battery", Polarity::kPositive));
  EXPECT_EQ(store.Subjects(),
            (std::vector<std::string>{"battery", "zoom"}));
}

TEST(SentimentStoreTest, FindFiltersByPolarity) {
  SentimentStore store;
  store.Add(Mention("d1", "battery", Polarity::kPositive));
  store.Add(Mention("d2", "battery", Polarity::kNegative));
  EXPECT_EQ(store.Find("battery", Polarity::kPositive).size(), 1u);
  EXPECT_EQ(store.Find("battery", Polarity::kNegative).size(), 1u);
  EXPECT_TRUE(store.Find("zoom", Polarity::kPositive).empty());
}

TEST(SentimentStoreTest, EmptyShareIsZero) {
  SentimentAggregate agg;
  EXPECT_NEAR(agg.PositiveShare(), 0.0, 1e-12);
}

// --- SentimentMiner (Mode A) --------------------------------------------------------

class MinerTest : public ::testing::Test {
 protected:
  MinerTest()
      : lexicon_(lexicon::SentimentLexicon::Embedded()),
        patterns_(lexicon::PatternDatabase::Embedded()) {}

  lexicon::SentimentLexicon lexicon_;
  lexicon::PatternDatabase patterns_;
};

TEST_F(MinerTest, MinesRegisteredSubjects) {
  SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "battery", {"batteries"}});
  miner.AddSubject({2, "flash", {}});

  SentimentStore store;
  miner.ProcessDocument(
      "doc-1",
      "I bought it in March. The battery is excellent. The flash is "
      "terrible. Nothing else matters.",
      &store);

  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.ForSubject("battery").positive, 1u);
  EXPECT_EQ(store.ForSubject("flash").negative, 1u);
}

TEST_F(MinerTest, RecordsSentenceTextAndOffsets) {
  SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "battery", {}});
  SentimentStore store;
  std::string body = "Filler first. The battery is excellent.";
  miner.ProcessDocument("doc-1", body, &store);
  ASSERT_EQ(store.size(), 1u);
  const SentimentMention& m = store.mentions()[0];
  EXPECT_EQ(m.sentence_index, 1u);
  EXPECT_EQ(body.substr(m.sentence_begin,
                        m.sentence_end - m.sentence_begin),
            "The battery is excellent.");
  EXPECT_NE(m.sentence_text.find("battery"), std::string::npos);
}

TEST_F(MinerTest, SynonymsRollUpToCanonical) {
  SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "Sony Corporation", {"Sony"}});
  SentimentStore store;
  miner.ProcessDocument("d", "Sony impresses everyone who tried it.",
                        &store);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.mentions()[0].subject, "Sony Corporation");
}

TEST_F(MinerTest, NeutralRecordingToggle) {
  SentimentMiner::Config config;
  config.record_neutral = false;
  SentimentMiner miner(&lexicon_, &patterns_, config);
  miner.AddSubject({1, "battery", {}});
  SentimentStore store;
  miner.ProcessDocument("d", "The battery arrived on Tuesday.", &store);
  EXPECT_EQ(store.size(), 0u);

  SentimentMiner with_neutral(&lexicon_, &patterns_);
  SentimentStore store2;
  with_neutral.AddSubject({1, "battery", {}});
  with_neutral.ProcessDocument("d", "The battery arrived on Tuesday.",
                               &store2);
  EXPECT_EQ(store2.size(), 1u);
  EXPECT_EQ(store2.mentions()[0].polarity, Polarity::kNeutral);
}

TEST_F(MinerTest, DisambiguatorFiltersOffTopicSpots) {
  SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "SUN", {"Sun", "sun"}});
  spot::TopicTermSet topic;
  topic.synset_id = 1;
  topic.on_topic = {"oil", "barrel"};
  topic.off_topic = {"weather", "sky"};
  miner.AddTopicTerms(topic);

  spot::CorpusStats stats;
  stats.AddDocument(std::vector<std::string>{"background", "words"});
  miner.SetCorpusStats(&stats);

  SentimentStore store;
  miner.ProcessDocument(
      "d-off", "The sun is wonderful. The weather and sky are clear.",
      &store);
  EXPECT_EQ(store.size(), 0u);  // off-topic spot filtered

  miner.ProcessDocument(
      "d-on", "SUN is wonderful. Analysts track every oil barrel it sells.",
      &store);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(MinerTest, FragmentAttributionOptIn) {
  SentimentMiner::Config config;
  config.attribute_fragments = true;
  config.record_neutral = false;
  SentimentMiner miner(&lexicon_, &patterns_, config);
  miner.AddSubject({1, "PowerLine S45", {}});
  SentimentStore store;
  miner.ProcessDocument(
      "d", "I bought the PowerLine S45 in May. Big mistake.", &store);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.mentions()[0].polarity, Polarity::kNegative);
  EXPECT_EQ(store.mentions()[0].source, SentimentSource::kCrossSentence);

  // Positive fragment.
  SentimentStore store2;
  miner.ProcessDocument(
      "d2", "I bought the PowerLine S45 in May. What a gem.", &store2);
  ASSERT_EQ(store2.size(), 1u);
  EXPECT_EQ(store2.mentions()[0].polarity, Polarity::kPositive);
}

TEST_F(MinerTest, FragmentAttributionOffByDefault) {
  SentimentMiner::Config config;
  config.record_neutral = false;
  SentimentMiner miner(&lexicon_, &patterns_, config);
  miner.AddSubject({1, "PowerLine S45", {}});
  SentimentStore store;
  miner.ProcessDocument(
      "d", "I bought the PowerLine S45 in May. Big mistake.", &store);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(MinerTest, FragmentRuleIgnoresFullSentences) {
  SentimentMiner::Config config;
  config.attribute_fragments = true;
  config.record_neutral = false;
  SentimentMiner miner(&lexicon_, &patterns_, config);
  miner.AddSubject({1, "PowerLine S45", {}});
  SentimentStore store;
  // The follow-up has a predicate (and is about something else): no
  // attribution.
  miner.ProcessDocument(
      "d", "I bought the PowerLine S45 in May. The weather was terrible.",
      &store);
  EXPECT_EQ(store.size(), 0u);
}

// --- AdHocSentimentMiner (Mode B) -----------------------------------------------------

TEST_F(MinerTest, AdHocFindsEntitySentiment) {
  AdHocSentimentMiner miner(&lexicon_, &patterns_);
  SentimentStore store;
  miner.ProcessDocument(
      "d",
      "Kodak impresses everyone who tried it. The weather was mild. "
      "Lawsuits plague Altona Petroleum.",
      &store);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.ForSubject("Kodak").positive, 1u);
  EXPECT_EQ(store.ForSubject("Altona Petroleum").negative, 1u);
}

TEST_F(MinerTest, AdHocSkipsNeutralEntities) {
  AdHocSentimentMiner miner(&lexicon_, &patterns_);
  SentimentStore store;
  miner.ProcessDocument("d", "Kodak announced a meeting in June.", &store);
  EXPECT_EQ(store.size(), 0u);
}

// --- PhraseSentimentScorer -------------------------------------------------------------

TEST(PhraseScorerTest, VotesAndNegation) {
  wf::testing::Pipeline pipeline;
  // Use the pipeline only to build a parse we can score against.
  parse::SentenceParse parse =
      pipeline.Parse("The camera has no excellent pictures.");
  text::Tokenizer tokenizer;
  text::TokenStream tokens =
      tokenizer.Tokenize("The camera has no excellent pictures.");
  PhraseSentimentScorer scorer(&pipeline.lexicon());
  // Whole sentence: "no" flips "excellent".
  EXPECT_EQ(scorer.Score(tokens, parse, parse.span.begin_token,
                         parse.span.end_token),
            Polarity::kNegative);
  // Ignoring negation restores the positive vote.
  EXPECT_EQ(scorer.Score(tokens, parse, parse.span.begin_token,
                         parse.span.end_token, SIZE_MAX,
                         /*ignore_negation=*/true),
            Polarity::kPositive);
}

}  // namespace
}  // namespace wf::core
