#include <gtest/gtest.h>

#include "ner/named_entity_spotter.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::ner {
namespace {

class NerTest : public ::testing::Test {
 protected:
  std::vector<std::string> Spot(const std::string& text) {
    text::TokenStream tokens = tokenizer_.Tokenize(text);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    std::vector<std::string> names;
    for (const NamedEntity& e : spotter_.Spot(tokens, spans)) {
      names.push_back(e.text);
    }
    return names;
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  NamedEntitySpotter spotter_;
};

TEST_F(NerTest, SimpleCapitalizedRun) {
  EXPECT_EQ(Spot("I bought a Sony PDA yesterday."),
            (std::vector<std::string>{"Sony PDA"}));
}

TEST_F(NerTest, PaperSplitExample) {
  // §3: "Prof. Wilson of American University" must split into two entities.
  EXPECT_EQ(Spot("We met Prof. Wilson of American University."),
            (std::vector<std::string>{"Prof. Wilson",
                                      "American University"}));
}

TEST_F(NerTest, ConjunctionSplits) {
  std::vector<std::string> names =
      Spot("They compared Canon and Nikon yesterday.");
  EXPECT_EQ(names, (std::vector<std::string>{"Canon", "Nikon"}));
}

TEST_F(NerTest, PossessiveSplits) {
  std::vector<std::string> names = Spot("It uses Sony's Memory Stick.");
  EXPECT_EQ(names, (std::vector<std::string>{"Sony", "Memory Stick"}));
}

TEST_F(NerTest, SentenceInitialCommonWordSkipped) {
  EXPECT_TRUE(Spot("The weather was mild.").empty());
  EXPECT_TRUE(Spot("However, things changed.").empty());
}

TEST_F(NerTest, SentenceInitialRealNameKept) {
  EXPECT_EQ(Spot("Kodak announced a new product."),
            (std::vector<std::string>{"Kodak"}));
}

TEST_F(NerTest, ProductCodes) {
  EXPECT_EQ(Spot("I compared the NR70 with the T615C."),
            (std::vector<std::string>{"NR70", "T615C"}));
}

TEST_F(NerTest, MultiTokenNameWithInternalOf) {
  // "of" inside a capitalized run joins when both halves are capitalized —
  // but the split heuristic separates them; the paper prefers splitting.
  std::vector<std::string> names = Spot("He visited the Bank of America.");
  EXPECT_EQ(names, (std::vector<std::string>{"Bank", "America"}));
}

TEST_F(NerTest, TitleAloneIsNotEntity) {
  EXPECT_TRUE(Spot("The dr. was out.").empty());
}

TEST_F(NerTest, SpansPointIntoTokens) {
  text::TokenStream tokens =
      tokenizer_.Tokenize("Sunrise Oil opened a refinery in June.");
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  std::vector<NamedEntity> entities = spotter_.Spot(tokens, spans);
  // "Sunrise Oil" plus the capitalized month "June".
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].text, "Sunrise Oil");
  EXPECT_EQ(entities[0].begin_token, 0u);
  EXPECT_EQ(entities[0].end_token, 2u);
}

TEST_F(NerTest, MultipleSentences) {
  std::vector<std::string> names =
      Spot("Kodak rose. Later, Fuji fell.");
  EXPECT_EQ(names, (std::vector<std::string>{"Kodak", "Fuji"}));
}

TEST_F(NerTest, MinTokensOption) {
  NamedEntitySpotter::Options options;
  options.min_tokens = 2;
  NamedEntitySpotter two_token(options);
  text::TokenStream tokens =
      tokenizer_.Tokenize("Kodak and Sunrise Oil reported earnings.");
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  std::vector<NamedEntity> entities = two_token.Spot(tokens, spans);
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_EQ(entities[0].text, "Sunrise Oil");
}

}  // namespace
}  // namespace wf::ner
