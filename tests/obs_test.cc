// wf_obs test suite: metrics registry semantics, the snapshot merge
// algebra the cluster roll-up depends on, wire/JSON exports, deterministic
// tracing, and the wfstats service end to end on a small cluster.
//
// The determinism contract under test (DESIGN.md "Observability"): every
// metric except timing histograms, and every span id, must replay
// byte-identically from the same seed — several tests here literally
// compare export strings across two independently constructed runs.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "tests/json_checker.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "platform/cluster.h"
#include "platform/entity.h"
#include "platform/fault.h"
#include "platform/vinci.h"

namespace wf::obs {
namespace {

using ::wf::common::StatusCode;

using ::wf::testing::JsonChecker;

TEST(JsonCheckerTest, AcceptsAndRejectsTheRightShapes) {
  // The checker itself has to be trustworthy before anything below is.
  EXPECT_TRUE(JsonChecker::Valid("{}"));
  EXPECT_TRUE(JsonChecker::Valid("[1,-2.5,1e3,\"a\\n\",true,null,{}]"));
  EXPECT_TRUE(JsonChecker::Valid("{\"a\":{\"b\":[]},\"c\":\"\\u00e9\"}"));
  EXPECT_FALSE(JsonChecker::Valid(""));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":1,}"));     // trailing comma
  EXPECT_FALSE(JsonChecker::Valid("{\"a\" 1}"));      // missing colon
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":1} junk"));  // trailing garbage
  EXPECT_FALSE(JsonChecker::Valid("\"unterminated"));
  EXPECT_FALSE(JsonChecker::Valid("\"raw\ncontrol\""));
  EXPECT_FALSE(JsonChecker::Valid("01x"));
}

// --- Counters, gauges, histograms -------------------------------------------

TEST(MetricsRegistryTest, CountersAndGaugesAccumulate) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("test/hits");
  hits->Add();
  hits->Add(41);
  // Re-getting returns the same handle, not a fresh metric.
  EXPECT_EQ(registry.GetCounter("test/hits"), hits);
  EXPECT_EQ(hits->value(), 42u);

  Gauge* level = registry.GetGauge("test/level");
  level->Set(10);
  level->Add(-3);
  EXPECT_EQ(level->value(), 7);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test/hits"), 42u);
  EXPECT_EQ(snap.GaugeValue("test/level"), 7);
  EXPECT_EQ(snap.CounterValue("test/absent"), 0u);
  EXPECT_EQ(snap.GaugeValue("test/absent"), 0);
  EXPECT_EQ(snap.FindHistogram("test/absent"), nullptr);
}

TEST(MetricsRegistryTest, HistogramBucketsByInclusiveUpperBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test/h", {10, 100});
  for (uint64_t v : {5u, 10u, 11u, 100u, 101u, 5000u}) h->Record(v);

  MetricsSnapshot full = registry.Snapshot();
  const HistogramSnapshot* snap = full.FindHistogram("test/h");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->bounds, (std::vector<uint64_t>{10, 100}));
  // <=10, <=100, overflow.
  EXPECT_EQ(snap->counts, (std::vector<uint64_t>{2, 2, 2}));
  EXPECT_EQ(snap->count, 6u);
  EXPECT_EQ(snap->sum, 5u + 10 + 11 + 100 + 101 + 5000);
  EXPECT_FALSE(snap->timing);
}

TEST(MetricsRegistryTest, BucketLayoutHelpers) {
  EXPECT_EQ(ExponentialBounds(1, 2.0, 4), (std::vector<uint64_t>{1, 2, 4, 8}));
  EXPECT_EQ(LinearBounds(0, 5, 3), (std::vector<uint64_t>{0, 5, 10}));
  EXPECT_EQ(DefaultRetryBounds().front(), 0u);
  EXPECT_EQ(DefaultRetryBounds().back(), 15u);
  // Latency bounds must be strictly ascending (merge and bucketing both
  // assume it).
  const std::vector<uint64_t>& latency = DefaultLatencyBoundsUs();
  for (size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

TEST(MetricsRegistryTest, MetricNameValidation) {
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("vinci/calls/node/0:a.b-c_d"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("has space"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("has=equals"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("has\nnewline"));
}

TEST(MetricsRegistryTest, ExportOrderIsIndependentOfRegistrationOrder) {
  // Same events, opposite registration order, different stripes — the
  // exports must still be byte-identical. This is the property that makes
  // golden-comparing two runs meaningful at all.
  MetricsRegistry a;
  a.GetCounter("z/last")->Add(1);
  a.GetGauge("m/mid")->Set(-4);
  a.GetHistogram("a/first", {1, 2})->Record(2);

  MetricsRegistry b;
  b.GetHistogram("a/first", {1, 2})->Record(2);
  b.GetGauge("m/mid")->Set(-4);
  b.GetCounter("z/last")->Add(1);

  EXPECT_EQ(a.Snapshot().ExportText(), b.Snapshot().ExportText());
  EXPECT_EQ(a.Snapshot().ExportJson(), b.Snapshot().ExportJson());
  EXPECT_EQ(a.Snapshot().ToWire(), b.Snapshot().ToWire());
}

TEST(MetricsRegistryTest, TimingHistogramsAreQuarantinedFromDeterministicExport) {
  MetricsRegistry registry;
  registry.GetCounter("det/counter")->Add(3);
  registry.GetHistogram("det/hist", {10})->Record(1);
  Histogram* timing =
      registry.GetHistogram("wall/latency_us", {10}, /*timing=*/true);
  {
    ScopedTimer timer(timing);  // records some wall-clock duration
  }
  EXPECT_EQ(timing->count(), 1u);

  MetricsSnapshot snap = registry.Snapshot();
  ExportOptions deterministic;
  deterministic.include_timings = false;
  std::string full = snap.ExportText();
  std::string det = snap.ExportText(deterministic);
  EXPECT_NE(full.find("wall/latency_us"), std::string::npos);
  EXPECT_EQ(det.find("wall/latency_us"), std::string::npos);
  EXPECT_NE(det.find("det/hist"), std::string::npos);
  EXPECT_EQ(snap.ExportJson(deterministic).find("wall/latency_us"),
            std::string::npos);
}

TEST(ScopedTimerTest, NullHistogramIsANoOp) {
  ScopedTimer timer(nullptr);  // must not crash on scope exit
  uint64_t t0 = MonotonicNowUs();
  EXPECT_GE(MonotonicNowUs(), t0);
}

// --- Merge algebra ----------------------------------------------------------

TEST(MetricsSnapshotTest, MergeSumsEveryKind) {
  MetricsRegistry ra, rb;
  ra.GetCounter("c")->Add(2);
  rb.GetCounter("c")->Add(3);
  rb.GetCounter("only_b")->Add(7);
  ra.GetGauge("g")->Set(10);
  rb.GetGauge("g")->Set(-4);
  ra.GetHistogram("h", {10})->Record(5);
  rb.GetHistogram("h", {10})->Record(50);

  MetricsSnapshot merged = ra.Snapshot();
  ASSERT_TRUE(merged.MergeFrom(rb.Snapshot()).ok());
  EXPECT_EQ(merged.CounterValue("c"), 5u);
  EXPECT_EQ(merged.CounterValue("only_b"), 7u);
  EXPECT_EQ(merged.GaugeValue("g"), 6);
  const HistogramSnapshot* h = merged.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts, (std::vector<uint64_t>{1, 1}));
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 55u);
}

TEST(MetricsSnapshotTest, MergeRejectsMismatchedBoundsWithoutMutating) {
  MetricsRegistry ra, rb;
  ra.GetCounter("c")->Add(1);
  ra.GetHistogram("h", {1, 2})->Record(1);
  rb.GetCounter("c")->Add(100);
  rb.GetHistogram("h", {1, 3})->Record(1);

  MetricsSnapshot left = ra.Snapshot();
  std::string before = left.ExportText();
  common::Status status = left.MergeFrom(rb.Snapshot());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Validation happens before any mutation: the counter that *could* have
  // merged must not have (a half-applied roll-up would be worse than none).
  EXPECT_EQ(left.ExportText(), before);
}

// A randomized snapshot over a fixed metric-name/bounds universe, so any
// two draws are merge-compatible.
MetricsSnapshot RandomSnapshot(common::Rng* rng) {
  MetricsRegistry registry;
  const std::vector<std::string> names = {"alpha", "beta/1", "gamma.x"};
  for (const std::string& name : names) {
    if (rng->Bernoulli(0.8)) {
      registry.GetCounter("count/" + name)
          ->Add(static_cast<uint64_t>(rng->Uniform(0, 1000)));
    }
    if (rng->Bernoulli(0.8)) {
      registry.GetGauge("level/" + name)->Set(rng->Uniform(-100, 100));
    }
    if (rng->Bernoulli(0.8)) {
      Histogram* h = registry.GetHistogram("hist/" + name, {4, 16, 64});
      int64_t draws = rng->Uniform(0, 20);
      for (int64_t i = 0; i < draws; ++i) {
        h->Record(static_cast<uint64_t>(rng->Uniform(0, 128)));
      }
    }
  }
  return registry.Snapshot();
}

TEST(MetricsSnapshotTest, PropertyMergeIsAssociativeAndCommutative) {
  // The cluster roll-up merges node exports in whatever order the scatter
  // returns them; the result must not depend on that order.
  common::Rng rng(20260806);
  for (int round = 0; round < 25; ++round) {
    MetricsSnapshot a = RandomSnapshot(&rng);
    MetricsSnapshot b = RandomSnapshot(&rng);
    MetricsSnapshot c = RandomSnapshot(&rng);

    MetricsSnapshot ab = a, ba = b;
    ASSERT_TRUE(ab.MergeFrom(b).ok());
    ASSERT_TRUE(ba.MergeFrom(a).ok());
    EXPECT_EQ(ab.ExportText(), ba.ExportText());  // commutative

    MetricsSnapshot ab_c = ab, bc = b, a_bc = a;
    ASSERT_TRUE(ab_c.MergeFrom(c).ok());
    ASSERT_TRUE(bc.MergeFrom(c).ok());
    ASSERT_TRUE(a_bc.MergeFrom(bc).ok());
    EXPECT_EQ(ab_c.ExportText(), a_bc.ExportText());  // associative
  }
}

// --- Wire + JSON forms ------------------------------------------------------

TEST(MetricsSnapshotTest, WireFormRoundTripsExactly) {
  MetricsRegistry registry;
  registry.GetCounter("vinci/calls/node/0/search")->Add(17);
  registry.GetGauge("vinci/breaker/state/node/0/search")->Set(-1);
  registry.GetHistogram("vinci/retries_per_call", DefaultRetryBounds())
      ->Record(3);
  registry.GetHistogram("lat", {1, 2}, /*timing=*/true)->Record(9);
  MetricsSnapshot snap = registry.Snapshot();

  auto round = MetricsSnapshot::FromWire(snap.ToWire());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->ExportText(), snap.ExportText());
  EXPECT_EQ(round->ToWire(), snap.ToWire());
  // The timing flag survives the trip — deterministic exports of a merged
  // roll-up still quarantine remote timing histograms.
  const HistogramSnapshot* lat = round->FindHistogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_TRUE(lat->timing);
}

TEST(MetricsSnapshotTest, MalformedWireLinesAreCorruption) {
  EXPECT_TRUE(MetricsSnapshot::FromWire("").ok());  // empty export is fine
  for (const char* bad : {
           "x name 1",            // unknown record type
           "c name",              // missing value
           "c name one",          // non-numeric value
           "c bad name 1",        // space in name rejected by the validator
           "g name 1 extra",      // trailing field
           "h name 2 - 1 0",      // timing flag out of range
           "h name 0 1,2 1,1 0",  // counts must be bounds+1 long
           "h name 0 1,2 x,1,1 0",  // non-numeric bucket count
       }) {
    common::Result<MetricsSnapshot> result = MetricsSnapshot::FromWire(bad);
    ASSERT_FALSE(result.ok()) << "accepted: " << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption) << bad;
  }
}

TEST(MetricsSnapshotTest, JsonExportIsWellFormedIncludingNastyNames) {
  MetricsRegistry registry;
  registry.GetCounter("quote.free/but-odd:chars_ok")->Add(1);
  registry.GetGauge("negative")->Set(-42);
  registry.GetHistogram("h", {1})->Record(2);
  registry.GetHistogram("t", {}, /*timing=*/true)->Record(2);
  std::string json = registry.Snapshot().ExportJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;

  // Escaping handles everything a string attribute could carry.
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_TRUE(JsonChecker::Valid("\"" + JsonEscape(std::string(1, '\x01')) +
                                 "\""));
}

// --- Concurrency (the TSan target) ------------------------------------------

TEST(MetricsConcurrencyTest, ParallelRecordingLosesNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      // Each thread hammers one shared metric of every kind plus one
      // private counter, exercising both handle reuse and first-use
      // registration races across stripes.
      Counter* shared = registry.GetCounter("shared/counter");
      Histogram* hist = registry.GetHistogram("shared/hist", {8, 64});
      std::string own = "private/counter/" + std::to_string(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->Add(1);
        hist->Record(i % 100);
        registry.GetGauge("shared/gauge")->Add(1);
        registry.GetCounter(own)->Add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("shared/counter"), kThreads * kPerThread);
  EXPECT_EQ(snap.GaugeValue("shared/gauge"),
            static_cast<int64_t>(kThreads * kPerThread));
  const HistogramSnapshot* hist = snap.FindHistogram("shared/hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.CounterValue("private/counter/" + std::to_string(t)),
              kPerThread);
  }
}

// --- Tracing ----------------------------------------------------------------

TEST(TraceTest, IdHexRoundTrip) {
  EXPECT_EQ(IdToHex(0x0123456789abcdefULL).size(), 16u);
  EXPECT_EQ(IdFromHex(IdToHex(0x0123456789abcdefULL)), 0x0123456789abcdefULL);
  EXPECT_EQ(IdFromHex(IdToHex(1)), 1u);
  EXPECT_EQ(IdFromHex(""), 0u);
  EXPECT_EQ(IdFromHex("abc"), 0u);                   // too short
  EXPECT_EQ(IdFromHex("00000000000000001"), 0u);     // too long
  EXPECT_EQ(IdFromHex("000000000000000g"), 0u);      // non-hex digit
}

TEST(TraceTest, ContextPropagatesOnlyWhenValid) {
  std::vector<std::pair<std::string, std::string>> fields = {{"term", "x"}};
  AppendContext(SpanContext{}, &fields);
  EXPECT_EQ(fields.size(), 1u);  // invalid context adds nothing

  Tracer tracer(1);
  Span root = tracer.StartTrace("q");
  AppendContext(root.context(), &fields);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1].first, kTraceIdKey);
  EXPECT_EQ(fields[2].first, kSpanIdKey);
  EXPECT_EQ(IdFromHex(fields[1].second), root.context().trace_id);
  EXPECT_EQ(IdFromHex(fields[2].second), root.context().span_id);
}

TEST(TraceTest, InertSpansRecordNothing) {
  Tracer tracer(1);
  {
    Span inert;                                      // default-constructed
    Span no_parent = tracer.StartSpan(SpanContext{}, "orphan");
    EXPECT_FALSE(inert.active());
    EXPECT_FALSE(no_parent.active());
    no_parent.SetAttr("k", "v");                     // all no-ops
    no_parent.Finish();
  }
  EXPECT_EQ(tracer.finished_count(), 0u);
}

TEST(TraceTest, DestructorAndMoveFinishExactlyOnce) {
  Tracer tracer(7);
  {
    Span a = tracer.StartTrace("outer");
    a.SetAttr("status", "ok");
    Span b = std::move(a);        // a becomes inert, b owns the span
    EXPECT_FALSE(a.active());     // NOLINT(bugprone-use-after-move): spec'd
    EXPECT_TRUE(b.active());
  }                               // b's destructor records it — once
  EXPECT_EQ(tracer.finished_count(), 1u);
  EXPECT_NE(tracer.ExportText().find("name=outer status=ok"),
            std::string::npos);
}

TEST(TraceTest, IdsAreSeedDeterministicAndOrderIndependent) {
  // Two tracers with the same seed replay identical ids; a scatter's
  // children (distinct names under one parent) get the same ids whatever
  // order threads create them in.
  auto run = [](uint64_t seed, bool reversed) {
    Tracer tracer(seed);
    Span root = tracer.StartTrace("query");
    std::vector<std::string> children = {"node/0/search", "node/1/search",
                                         "node/2/search"};
    if (reversed) {
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        tracer.StartSpan(root.context(), *it).Finish();
      }
    } else {
      for (const std::string& name : children) {
        tracer.StartSpan(root.context(), name).Finish();
      }
    }
    root.Finish();
    return tracer.ExportText();
  };
  std::string forward = run(99, false);
  EXPECT_EQ(forward, run(99, false));
  EXPECT_EQ(forward, run(99, true));  // creation order is irrelevant
  EXPECT_NE(forward, run(100, false));
}

TEST(TraceTest, SequentialSameNameChildrenGetDistinctIds) {
  // Retries of one call are same-name siblings: the per-(parent, name)
  // sequence must keep their ids apart.
  Tracer tracer(5);
  Span root = tracer.StartTrace("query");
  Span first = tracer.StartSpan(root.context(), "node/0/fetch");
  Span second = tracer.StartSpan(root.context(), "node/0/fetch");
  EXPECT_NE(first.context().span_id, second.context().span_id);
  EXPECT_EQ(first.context().trace_id, second.context().trace_id);
}

TEST(TraceTest, ExportsAreStitchedAndWellFormed) {
  Tracer tracer(3);
  Span root = tracer.StartTrace("cluster/search");
  SpanContext root_ctx = root.context();
  Span child = tracer.StartSpan(root_ctx, "node/0/search");
  SpanContext child_ctx = child.context();
  child.Finish();
  root.Finish();

  EXPECT_EQ(child_ctx.trace_id, root_ctx.trace_id);
  std::string text = tracer.ExportText();
  EXPECT_NE(text.find("parent=- name=cluster/search"), std::string::npos);
  EXPECT_NE(text.find("parent=" + IdToHex(root_ctx.span_id) +
                      " name=node/0/search"),
            std::string::npos);
  EXPECT_TRUE(JsonChecker::Valid(tracer.ExportJson()));

  tracer.Clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
  EXPECT_EQ(tracer.ExportJson(), "[]");
}

// --- wfstats + traced search on a live cluster ------------------------------

platform::Cluster* BuildSmallCluster(platform::Cluster* cluster) {
  const char* bodies[] = {"kodak shines", "kodak struggles", "fuji ships",
                          "kodak and fuji compete", "quiet day", "more kodak"};
  int i = 0;
  for (const char* body : bodies) {
    platform::Entity e("doc-" + std::to_string(i++), "page");
    e.SetBody(body);
    WF_CHECK_OK(cluster->Ingest(std::move(e)));
  }
  cluster->MineAndIndexAll();
  return cluster;
}

TEST(WfstatsServiceTest, ExportsValidJsonAndMergeableWire) {
  platform::Cluster cluster(2);
  BuildSmallCluster(&cluster);
  (void)cluster.Search("kodak");

  for (size_t n = 0; n < cluster.node_count(); ++n) {
    std::string service = cluster.node(n).StatsServiceName();
    // JSON view: must parse — this is the assertion check.sh leans on.
    auto json = cluster.bus().Call(
        service, platform::EncodeMessage({{"format", "json"}}));
    ASSERT_TRUE(json.ok()) << service;
    std::string payload = platform::GetMessageField(*json, "stats");
    EXPECT_TRUE(JsonChecker::Valid(payload)) << payload;
    EXPECT_EQ(platform::GetMessageField(*json, "node"), std::to_string(n));

    // Wire view: must parse into a mergeable snapshot with real content.
    auto wire = cluster.bus().Call(
        service, platform::EncodeMessage({{"format", "wire"}}));
    ASSERT_TRUE(wire.ok());
    auto snapshot = obs::MetricsSnapshot::FromWire(
        platform::GetMessageField(*wire, "stats"));
    ASSERT_TRUE(snapshot.ok());
    // The node-side counter is present whatever this shard's doc count is
    // (the cross-node total is asserted in CollectStatsRollsUpEveryNode).
    EXPECT_EQ(snapshot->counters.count("index/indexed_entities_total"), 1u);

    // Text view: one metric per line, starts with a known record type.
    auto text = cluster.bus().Call(
        service, platform::EncodeMessage({{"format", "text"}}));
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(platform::GetMessageField(*text, "stats").rfind("counter ", 0),
              0u);
  }
}

TEST(WfstatsServiceTest, CollectStatsRollsUpEveryNode) {
  platform::Cluster cluster(3);
  BuildSmallCluster(&cluster);
  (void)cluster.Search("kodak");
  (void)cluster.Search("fuji");

  platform::ClusterStats stats = cluster.CollectStats();
  EXPECT_EQ(stats.nodes_total, 3u);
  EXPECT_TRUE(stats.complete()) << stats.failed_services.size();
  // Node-side counters roll up to cluster truth...
  EXPECT_EQ(stats.merged.CounterValue("index/indexed_entities_total"),
            cluster.TotalEntities());
  EXPECT_EQ(static_cast<size_t>(stats.merged.GaugeValue("store/entities")),
            cluster.TotalEntities());
  // ...alongside the cluster's own bus-level counters.
  EXPECT_EQ(stats.merged.CounterValue("cluster/searches_total"), 2u);
  EXPECT_EQ(stats.merged.CounterValue("ingest/stored_total"), 6u);
}

TEST(WfstatsServiceTest, PartitionedNodeIsReportedNotMerged) {
  platform::Cluster cluster(2);
  BuildSmallCluster(&cluster);
  platform::FaultInjector injector(17);
  cluster.bus().AttachFaultInjector(&injector);
  injector.Partition("wfstats/node/1");

  platform::ClusterStats stats = cluster.CollectStats();
  EXPECT_EQ(stats.nodes_total, 2u);
  EXPECT_EQ(stats.nodes_responded, 1u);
  EXPECT_FALSE(stats.complete());
  ASSERT_EQ(stats.failed_services.size(), 1u);
  EXPECT_EQ(stats.failed_services[0], "wfstats/node/1");
}

// The acceptance property for the whole subsystem: a traced, fault-injected
// run exports byte-identical metrics (timings quarantined) and traces
// across two identically-seeded executions, and the trace stitches the
// scatter under a single root.
TEST(TracedClusterTest, SameSeedRunsExportIdenticalMetricsAndTraces) {
  auto run = [] {
    platform::Cluster cluster(3);
    BuildSmallCluster(&cluster);
    obs::Tracer tracer(4242);
    cluster.AttachTracer(&tracer);
    platform::FaultInjector injector(31337);
    platform::FaultPolicy flaky;
    flaky.fail_probability = 0.2;
    injector.SetPolicy("node/", flaky);
    cluster.bus().AttachFaultInjector(&injector);

    for (int i = 0; i < 8; ++i) {
      (void)cluster.Search(i % 2 == 0 ? "kodak" : "fuji");
    }
    ExportOptions deterministic;
    deterministic.include_timings = false;
    return cluster.metrics().Snapshot().ExportText(deterministic) + "----\n" +
           tracer.ExportText();
  };

  std::string first = run();
  EXPECT_EQ(first, run());

  // Structure: every search produced one root and one child per scattered
  // node service, all under the root's trace id.
  platform::Cluster cluster(3);
  BuildSmallCluster(&cluster);
  obs::Tracer tracer(4242);
  cluster.AttachTracer(&tracer);
  (void)cluster.Search("kodak");
  std::string text = tracer.ExportText();
  size_t roots = 0, children = 0;
  size_t pos = 0;
  while ((pos = text.find("parent=-", pos)) != std::string::npos) {
    ++roots;
    pos += 8;
  }
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    for (const char* suffix : {"search", "stats", "fetch"}) {
      std::string needle =
          "name=node/" + std::to_string(n) + "/" + suffix;
      if (text.find(needle) != std::string::npos) ++children;
    }
  }
  EXPECT_EQ(roots, 1u);
  // The scatter hits every node/* service; each dispatched call is a child.
  EXPECT_EQ(children, cluster.node_count() * 3);
  EXPECT_EQ(tracer.finished_count(), 1 + cluster.node_count() * 3);
}

}  // namespace
}  // namespace wf::obs
