// Allocation-count regression gate (ISSUE 10, CI/tooling satellite): a
// counting global operator new measures how many heap allocations one
// analyzed document costs, and the test fails if the per-document budget
// regresses above the recorded ceiling. The arena/interner refactor bought
// these numbers; this gate keeps them.
//
// Not meaningful under sanitizers (interceptors replace operator new), so
// tests/CMakeLists.txt registers this binary only in plain builds.
//
// wflint: allow(raw-delete) — the flagged lines are the replaceable global
// `operator delete` DEFINITIONS the counting allocator must provide, not
// raw delete-expressions.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "corpus/datasets.h"
#include "gtest/gtest.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/data_store.h"
#include "platform/entity.h"
#include "platform/miner_framework.h"
#include "platform/sentiment_miner_plugin.h"

// This TU replaces operator new with a malloc-backed counting allocator;
// GCC's inliner then sees malloc'd pointers reach the (replaced,
// free-backed) delete and flags a mismatch that is not one.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<uint64_t> g_new_calls{0};

}  // namespace

// Counting allocator: every path through the replaceable global news lands
// here. Counting is relaxed — the gate runs single-threaded.
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   ((size + static_cast<std::size_t>(align) -
                                     1) /
                                    static_cast<std::size_t>(align)) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wf {
namespace {

// Recorded ceilings, measured on this tree after the arena/interner
// refactor (117 analyze / 193 mining allocations per petroleum-corpus
// document). The pre-arena tree measured 84/doc on the same corpus —
// small-string optimization absorbed most per-token strings — so the
// gate's job is not to celebrate a drop but to keep the count *bounded*:
// any change that puts a non-SSO allocation in a token loop (long
// surface forms, lemma copies, join buffers) multiplies the count by
// tokens-per-document and trips the ceiling immediately, where SSO would
// have hidden it from a timing bench until the corpus changed.
constexpr uint64_t kAnalyzeAllocsPerDocCeiling = 160;
constexpr uint64_t kMineAllocsPerDocCeiling = 280;

uint64_t CountAllocs(const std::function<void()>& fn) {
  const uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  fn();
  return g_new_calls.load(std::memory_order_relaxed) - before;
}

TEST(AllocGateTest, AnalysisFrontHalfStaysUnderBudget) {
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(9001);
  ASSERT_FALSE(petro.docs.empty());
  // Warm up lazily-initialized embedded resources so they are not billed
  // to the first document.
  (void)core::AnalyzeDocument(petro.docs.front().body);
  const uint64_t total = CountAllocs([&petro] {
    for (const corpus::GeneratedDoc& d : petro.docs) {
      std::shared_ptr<const core::LinguisticAnalysis> analysis =
          core::AnalyzeDocument(d.body);
      ASSERT_FALSE(analysis->tokens.empty());
    }
  });
  const uint64_t per_doc = total / petro.docs.size();
  std::printf("analyze allocs/doc: %llu (ceiling %llu)\n",
              static_cast<unsigned long long>(per_doc),
              static_cast<unsigned long long>(kAnalyzeAllocsPerDocCeiling));
  EXPECT_LE(per_doc, kAnalyzeAllocsPerDocCeiling)
      << "per-document allocation budget regressed; if the growth is "
         "intentional, re-measure and update the recorded ceiling";
}

TEST(AllocGateTest, FullMiningSweepStaysUnderBudget) {
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(9001);
  platform::DataStore store;
  for (const corpus::GeneratedDoc& d : petro.docs) {
    platform::Entity e(d.id, "crawl");
    e.SetBody(d.body);
    ASSERT_TRUE(store.Put(std::move(e)).ok());
  }
  static const lexicon::SentimentLexicon* const lexicon =
      new lexicon::SentimentLexicon(lexicon::SentimentLexicon::Embedded());
  static const lexicon::PatternDatabase* const patterns =
      new lexicon::PatternDatabase(lexicon::PatternDatabase::Embedded());
  platform::MinerPipeline pipeline;
  pipeline.AddMiner(std::make_unique<platform::SentenceBoundaryMiner>());
  pipeline.AddMiner(std::make_unique<platform::TokenStatsMiner>());
  pipeline.AddMiner(std::make_unique<platform::AdHocSentimentMinerPlugin>(
      lexicon, patterns));
  const uint64_t total =
      CountAllocs([&pipeline, &store] { pipeline.ProcessStore(store); });
  const uint64_t per_doc = total / store.size();
  std::printf("mining allocs/doc: %llu (ceiling %llu)\n",
              static_cast<unsigned long long>(per_doc),
              static_cast<unsigned long long>(kMineAllocsPerDocCeiling));
  EXPECT_LE(per_doc, kMineAllocsPerDocCeiling)
      << "per-document mining allocation budget regressed; if the growth "
         "is intentional, re-measure and update the recorded ceiling";
}

}  // namespace
}  // namespace wf
