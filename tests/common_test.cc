#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace wf::common {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing doc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing doc");
  EXPECT_EQ(s.ToString(), "NotFound: missing doc");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IOError("x"));
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(StatusCode::kUnimplemented) + 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::IOError("disk"); }

Status UsesReturnIfError() {
  WF_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIOError);
}

Result<int> GiveSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  WF_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// --- String utilities ----------------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("Hello World!"), "hello world!");
  EXPECT_EQ(ToUpper("Hello World!"), "HELLO WORLD!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, CharClasses) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_TRUE(IsAsciiSpace('\t'));
  EXPECT_TRUE(IsAsciiPunct('.'));
  EXPECT_FALSE(IsAsciiPunct('a'));
}

TEST(StringUtilTest, Capitalization) {
  EXPECT_TRUE(IsCapitalized("Sony"));
  EXPECT_FALSE(IsCapitalized("sony"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_TRUE(IsAllUpper("NR70"));
  EXPECT_TRUE(IsAllUpper("SUN"));
  EXPECT_FALSE(IsAllUpper("Sun"));
  EXPECT_FALSE(IsAllUpper("1234"));  // no alphabetic character
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sentiment", "sent"));
  EXPECT_FALSE(StartsWith("sent", "sentiment"));
  EXPECT_TRUE(EndsWith("mining", "ing"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("NR70", "nr70"));
  EXPECT_FALSE(EqualsIgnoreCase("NR70", "nr7"));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,,b, c", ", "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringUtilTest, SplitExactKeepsEmptyPieces) {
  EXPECT_EQ(SplitExact("a||b", "|"),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitExact("abc", "|"), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinRoundTripsSplitExact) {
  std::vector<std::string> parts{"x", "", "yz", "w"};
  EXPECT_EQ(SplitExact(Join(parts, "|"), "|"), parts);
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("nothing", "x", "y"), "nothing");
  EXPECT_EQ(ReplaceAll("overlap", "", "y"), "overlap");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1 << 30) == b.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.Weighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(RngTest, WeightedDistribution) {
  Rng rng(7);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Weighted({1.0, 3.0})];
  }
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // Child stream differs from a fresh Rng(5) stream.
  Rng fresh(5);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.Uniform(0, 1 << 30) != fresh.Uniform(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

// --- Hash ----------------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a published test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, Fnv1a64Distinguishes) {
  EXPECT_NE(Fnv1a64("doc-1"), Fnv1a64("doc-2"));
  EXPECT_EQ(Fnv1a64("stable"), Fnv1a64("stable"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// --- Arena ---------------------------------------------------------------------

TEST(ArenaTest, AllocRespectsAlignment) {
  Arena arena;
  // Interleave odd sizes with strict alignments; every pointer must land
  // on its requested boundary.
  for (size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul}) {
    for (size_t size : {1ul, 3ul, 7ul, 24ul, 129ul}) {
      void* p = arena.Alloc(size, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "size=" << size << " align=" << align;
    }
  }
}

TEST(ArenaTest, BlocksGrowGeometricallyAndOversizedGetOwnBlock) {
  Arena arena;
  arena.Alloc(16);
  EXPECT_EQ(arena.block_count(), 1u);
  size_t first_reserved = arena.bytes_reserved();
  // Filling past the first block grows the reservation, not one block
  // per allocation.
  while (arena.block_count() == 1) arena.Alloc(512);
  EXPECT_GT(arena.bytes_reserved(), first_reserved);
  // A request larger than the max block size is still served.
  void* big = arena.Alloc(1 << 20);
  ASSERT_NE(big, nullptr);
}

TEST(ArenaTest, ResetKeepsLargestBlockForReuse) {
  Arena arena;
  // Force several blocks, including a big one.
  for (int i = 0; i < 100; ++i) arena.Alloc(1024);
  size_t reserved_before = arena.bytes_reserved();
  ASSERT_GT(arena.block_count(), 1u);
  // wflint: allow(discarded-status) — Arena::Reset returns void; the rule
  // matches it by name against WriteAheadLog::Reset, which returns Status.
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_LT(arena.bytes_reserved(), reserved_before);
  // Steady state: a reused arena whose largest block covers the document
  // never asks malloc again.
  size_t reserved_after_reset = arena.bytes_reserved();
  for (int i = 0; i < 10; ++i) arena.Alloc(1024);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_reset);
}

TEST(ArenaTest, CopyStringIsStableAndIndependent) {
  Arena arena;
  std::string source = "the battery life";
  std::string_view copy = arena.CopyString(source);
  EXPECT_EQ(copy, source);
  EXPECT_NE(copy.data(), source.data());
  // Mutating the source cannot reach the arena copy (lifetime of views is
  // tied to the artifact that owns the arena, not the input buffer).
  source[0] = 'X';
  EXPECT_EQ(copy, "the battery life");
  // Zero-length copies are valid, distinct views.
  EXPECT_EQ(arena.CopyString("").size(), 0u);
}

TEST(StringInternerTest, DedupsEqualStringsToOneCopy) {
  Arena arena;
  StringInterner interner(&arena);
  std::string_view a = interner.Intern("battery");
  std::string_view b = interner.Intern(std::string("battery"));
  std::string_view c = interner.Intern("zoom");
  EXPECT_EQ(a, "battery");
  EXPECT_EQ(a.data(), b.data());  // one arena copy shared
  EXPECT_NE(a.data(), c.data());
  EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInternerTest, InternLowerFoldsCaseBeforeDedup) {
  Arena arena;
  StringInterner interner(&arena);
  std::string_view a = interner.InternLower("Battery");
  std::string_view b = interner.InternLower("BATTERY");
  EXPECT_EQ(a, "battery");
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, ViewsSurviveSourceDeath) {
  Arena arena;
  StringInterner interner(&arena);
  std::string_view view;
  {
    std::string ephemeral = "short-lived token text";
    view = interner.Intern(ephemeral);
  }
  // The interned bytes live in the arena, not the dead source string.
  std::vector<std::string> churn(64, std::string(64, 'x'));  // stomp heap
  EXPECT_EQ(view, "short-lived token text");
}

}  // namespace
}  // namespace wf::common
