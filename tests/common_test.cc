#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace wf::common {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing doc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing doc");
  EXPECT_EQ(s.ToString(), "NotFound: missing doc");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IOError("x"));
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(StatusCode::kUnimplemented) + 1);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::IOError("disk"); }

Status UsesReturnIfError() {
  WF_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIOError);
}

Result<int> GiveSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  WF_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// --- String utilities ----------------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("Hello World!"), "hello world!");
  EXPECT_EQ(ToUpper("Hello World!"), "HELLO WORLD!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, CharClasses) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_TRUE(IsAsciiSpace('\t'));
  EXPECT_TRUE(IsAsciiPunct('.'));
  EXPECT_FALSE(IsAsciiPunct('a'));
}

TEST(StringUtilTest, Capitalization) {
  EXPECT_TRUE(IsCapitalized("Sony"));
  EXPECT_FALSE(IsCapitalized("sony"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_TRUE(IsAllUpper("NR70"));
  EXPECT_TRUE(IsAllUpper("SUN"));
  EXPECT_FALSE(IsAllUpper("Sun"));
  EXPECT_FALSE(IsAllUpper("1234"));  // no alphabetic character
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sentiment", "sent"));
  EXPECT_FALSE(StartsWith("sent", "sentiment"));
  EXPECT_TRUE(EndsWith("mining", "ing"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("NR70", "nr70"));
  EXPECT_FALSE(EqualsIgnoreCase("NR70", "nr7"));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,,b, c", ", "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringUtilTest, SplitExactKeepsEmptyPieces) {
  EXPECT_EQ(SplitExact("a||b", "|"),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitExact("abc", "|"), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinRoundTripsSplitExact) {
  std::vector<std::string> parts{"x", "", "yz", "w"};
  EXPECT_EQ(SplitExact(Join(parts, "|"), "|"), parts);
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("nothing", "x", "y"), "nothing");
  EXPECT_EQ(ReplaceAll("overlap", "", "y"), "overlap");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1 << 30) == b.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    size_t pick = rng.Weighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
}

TEST(RngTest, WeightedDistribution) {
  Rng rng(7);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Weighted({1.0, 3.0})];
  }
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // Child stream differs from a fresh Rng(5) stream.
  Rng fresh(5);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.Uniform(0, 1 << 30) != fresh.Uniform(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

// --- Hash ----------------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownValues) {
  // FNV-1a published test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, Fnv1a64Distinguishes) {
  EXPECT_NE(Fnv1a64("doc-1"), Fnv1a64("doc-2"));
  EXPECT_EQ(Fnv1a64("stable"), Fnv1a64("stable"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace wf::common
