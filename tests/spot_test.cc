#include <gtest/gtest.h>

#include "spot/disambiguator.h"
#include "spot/spotter.h"
#include "spot/tfidf.h"
#include "text/tokenizer.h"

namespace wf::spot {
namespace {

text::TokenStream Tok(const std::string& s) {
  text::Tokenizer t;
  return t.Tokenize(s);
}

// --- Spotter --------------------------------------------------------------------

TEST(SpotterTest, SingleTermSpot) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "battery", {}});
  std::vector<SubjectSpot> spots =
      spotter.Spot(Tok("The battery died. Battery life matters."));
  ASSERT_EQ(spots.size(), 2u);
  EXPECT_EQ(spots[0].synset_id, 1);
}

TEST(SpotterTest, CaseInsensitive) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "SUN", {}});
  EXPECT_EQ(spotter.Spot(Tok("sun Sun SUN")).size(), 3u);
}

TEST(SpotterTest, MultiWordPhrase) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "picture quality", {}});
  std::vector<SubjectSpot> spots =
      spotter.Spot(Tok("The picture quality is great, the picture less so."));
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_EQ(spots[0].end_token - spots[0].begin_token, 2u);
}

TEST(SpotterTest, SynonymVariantsShareId) {
  Spotter spotter;
  spotter.AddSynonymSet(
      {7, "Sony Corporation", {"Sony", "Sony Corp."}});
  std::vector<SubjectSpot> spots = spotter.Spot(
      Tok("Sony Corporation and Sony and Sony Corp. are one company."));
  ASSERT_EQ(spots.size(), 3u);
  for (const SubjectSpot& s : spots) EXPECT_EQ(s.synset_id, 7);
}

TEST(SpotterTest, LeftmostLongestWins) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "battery", {}});
  spotter.AddSynonymSet({2, "battery life", {}});
  std::vector<SubjectSpot> spots = spotter.Spot(Tok("The battery life."));
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_EQ(spots[0].synset_id, 2);  // longest match
}

TEST(SpotterTest, NonOverlappingSequentialSpots) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "zoom", {}});
  std::vector<SubjectSpot> spots = spotter.Spot(Tok("zoom zoom zoom"));
  ASSERT_EQ(spots.size(), 3u);
  EXPECT_EQ(spots[1].begin_token, 1u);
}

TEST(SpotterTest, FindSetReturnsRegistered) {
  Spotter spotter;
  spotter.AddSynonymSet({3, "flash", {}});
  ASSERT_NE(spotter.FindSet(3), nullptr);
  EXPECT_EQ(spotter.FindSet(3)->canonical, "flash");
  EXPECT_EQ(spotter.FindSet(99), nullptr);
}

TEST(SpotterTest, NoSpotsInUnrelatedText) {
  Spotter spotter;
  spotter.AddSynonymSet({1, "battery", {}});
  EXPECT_TRUE(spotter.Spot(Tok("Nothing relevant here.")).empty());
}

// --- CorpusStats -------------------------------------------------------------------

TEST(CorpusStatsTest, DocumentFrequencyCountsOncePerDoc) {
  CorpusStats stats;
  stats.AddDocument({"oil", "oil", "rig"});
  stats.AddDocument({"oil"});
  EXPECT_EQ(stats.DocumentFrequency("oil"), 2u);
  EXPECT_EQ(stats.DocumentFrequency("rig"), 1u);
  EXPECT_EQ(stats.DocumentFrequency("gas"), 0u);
  EXPECT_EQ(stats.document_count(), 2u);
}

TEST(CorpusStatsTest, IdfDecreasesWithFrequency) {
  CorpusStats stats;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> doc{"common"};
    if (i == 0) doc.push_back("rare");
    stats.AddDocument(doc);
  }
  EXPECT_GT(stats.Idf("rare"), stats.Idf("common"));
  EXPECT_GT(stats.Idf("unseen"), stats.Idf("rare"));
  EXPECT_GT(stats.Idf("common"), 0.0);  // never negative
}

// --- Disambiguator ------------------------------------------------------------------

class DisambiguatorTest : public ::testing::Test {
 protected:
  DisambiguatorTest() {
    // Background stats: make topic words informative.
    for (int i = 0; i < 20; ++i) {
      stats_.AddDocument({"the", "a", "and", "day"});
    }
    stats_.AddDocument({"oil", "barrel", "drilling"});
    stats_.AddDocument({"weather", "sky", "sunday"});

    TopicTermSet topic;
    topic.synset_id = 1;
    topic.on_topic = {"oil", "barrel", "drilling", "crude oil"};
    topic.off_topic = {"weather", "sky", "sunday"};
    disambiguator_.AddTopic(topic);
  }

  std::vector<DisambiguationResult> Evaluate(const std::string& text) {
    Spotter spotter;
    spotter.AddSynonymSet({1, "SUN", {"Sun"}});
    text::TokenStream tokens = Tok(text);
    return disambiguator_.Evaluate(tokens, spotter.Spot(tokens), stats_);
  }

  CorpusStats stats_;
  Disambiguator disambiguator_;
};

TEST_F(DisambiguatorTest, OnTopicContextAccepted) {
  // The paper's SUN example: the company in an oil context.
  auto results = Evaluate(
      "SUN raised its output. The company shipped every barrel of oil "
      "from the new drilling platform, and oil analysts cheered the "
      "barrel counts.");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].on_topic);
  EXPECT_GT(results[0].global_score, 0.0);
}

TEST_F(DisambiguatorTest, OffTopicContextRejected) {
  // "Sun" in a weather context ("Sunday" analogue).
  auto results = Evaluate(
      "The sun was warm on Sunday. The weather stayed clear and the sky "
      "was blue all weekend.");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].on_topic);
  EXPECT_LT(results[0].global_score, 0.0);
}

TEST_F(DisambiguatorTest, UnregisteredTopicPassesThrough) {
  Disambiguator empty;
  Spotter spotter;
  spotter.AddSynonymSet({5, "Kodak", {}});
  std::string body = "Kodak did things.";  // must outlive its token views
  text::TokenStream tokens = Tok(body);
  auto results = empty.Evaluate(tokens, spotter.Spot(tokens), stats_);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].on_topic);
}

TEST_F(DisambiguatorTest, GlobalPassAcceptsAllSpots) {
  // Strong global context: both spots accepted even if one is locally bare.
  auto results = Evaluate(
      "SUN posted results. Analysts discussed oil, barrel prices, "
      "drilling schedules, oil reserves and more oil. Sun closed higher.");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].on_topic);
  EXPECT_TRUE(results[1].on_topic);
}

TEST_F(DisambiguatorTest, LexicalAffinityWeighsDouble) {
  TopicTermSet topic;
  topic.synset_id = 2;
  topic.on_topic = {"crude oil"};
  Disambiguator d;
  d.AddTopic(topic);
  Spotter spotter;
  spotter.AddSynonymSet({2, "CBR", {}});
  std::string body = "CBR shipped crude oil to the coast.";
  text::TokenStream tokens = Tok(body);
  auto results = d.Evaluate(tokens, spotter.Spot(tokens), stats_);
  ASSERT_EQ(results.size(), 1u);
  // Bigram "crude oil" present: double weight * idf.
  EXPECT_GT(results[0].global_score, 0.0);
  EXPECT_TRUE(results[0].on_topic);
}

}  // namespace
}  // namespace wf::spot
