#include <gtest/gtest.h>

#include "common/arena.h"
#include "parse/chunker.h"
#include "parse/clause_splitter.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::parse {
namespace {

class ParseTest : public ::testing::Test {
 protected:
  SentenceParse Parse(const std::string& sentence) {
    // Tokens are zero-copy views into the body, so the fixture must own it
    // beyond this call.
    body_ = sentence;
    tokens_ = tokenizer_.Tokenize(body_);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens_);
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens_, spans[0]);
    return analyzer_.Analyze(tokens_, spans[0], tags, &interner_);
  }

  // Surface text of a chunk.
  std::string ChunkText(const SentenceParse& parse, int chunk) {
    if (chunk < 0) return "";
    std::string out;
    const Chunk& c = parse.chunks[static_cast<size_t>(chunk)];
    for (size_t i = c.begin; i < c.end; ++i) {
      if (!out.empty()) out += ' ';
      out += tokens_[i].text;
    }
    return out;
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  SentenceAnalyzer analyzer_;
  std::string body_;
  text::TokenStream tokens_;
  common::Arena arena_;
  common::StringInterner interner_{&arena_};
};

// --- Chunker shapes ---------------------------------------------------------------

TEST_F(ParseTest, BasicSvoChunks) {
  SentenceParse p = Parse("The camera takes excellent pictures.");
  ASSERT_GE(p.chunks.size(), 3u);
  EXPECT_EQ(p.chunks[0].type, ChunkType::kNP);
  EXPECT_EQ(p.chunks[1].type, ChunkType::kVP);
  EXPECT_EQ(p.chunks[2].type, ChunkType::kNP);
}

TEST_F(ParseTest, PronounIsOneTokenNp) {
  SentenceParse p = Parse("I love it.");
  EXPECT_EQ(p.chunks[0].type, ChunkType::kNP);
  EXPECT_EQ(p.chunks[0].size(), 1u);
}

TEST_F(ParseTest, AdverbInsideNp) {
  SentenceParse p = Parse("A very sharp lens arrived.");
  EXPECT_EQ(p.chunks[0].type, ChunkType::kNP);
  EXPECT_EQ(p.chunks[0].size(), 4u);  // A very sharp lens
}

TEST_F(ParseTest, PredicativeAdjp) {
  SentenceParse p = Parse("The colors are vibrant.");
  ASSERT_GE(p.chunks.size(), 3u);
  EXPECT_EQ(p.chunks[2].type, ChunkType::kADJP);
}

TEST_F(ParseTest, AttributiveAdjectiveStaysInNp) {
  SentenceParse p = Parse("The vibrant colors faded.");
  EXPECT_EQ(p.chunks[0].type, ChunkType::kNP);
  EXPECT_EQ(p.chunks[0].size(), 3u);
}

// --- Predicate and components ------------------------------------------------------

TEST_F(ParseTest, PredicateLemma) {
  SentenceParse p = Parse("The camera takes excellent pictures.");
  EXPECT_EQ(p.predicate_lemma, "take");
}

TEST_F(ParseTest, AuxChainHeadVerb) {
  SentenceParse p = Parse("I was really impressed by the lens.");
  EXPECT_EQ(p.predicate_lemma, "impress");
}

TEST_F(ParseTest, InfinitiveIsNotMainPredicate) {
  SentenceParse p = Parse("The product fails to meet our expectations.");
  EXPECT_EQ(p.predicate_lemma, "fail");
}

TEST_F(ParseTest, SubjectAndObject) {
  SentenceParse p = Parse("The company offers mediocre services.");
  EXPECT_EQ(ChunkText(p, p.subject_chunk), "The company");
  EXPECT_EQ(ChunkText(p, p.object_chunk), "mediocre services");
}

TEST_F(ParseTest, CopulaComplementAdjp) {
  SentenceParse p = Parse("The picture is flawless.");
  EXPECT_GE(p.complement_chunk, 0);
  EXPECT_EQ(ChunkText(p, p.complement_chunk), "flawless");
  EXPECT_EQ(p.object_chunk, -1);
}

TEST_F(ParseTest, CopulaComplementNp) {
  SentenceParse p = Parse("The battery is a nightmare.");
  EXPECT_GE(p.complement_chunk, 0);
  EXPECT_EQ(ChunkText(p, p.complement_chunk), "a nightmare");
}

TEST_F(ParseTest, PpAttachment) {
  SentenceParse p = Parse("I am impressed by the flash capabilities.");
  ASSERT_FALSE(p.pps.empty());
  EXPECT_EQ(p.pps[0].preposition, "by");
  EXPECT_EQ(ChunkText(p, p.pps[0].np_chunk), "the flash capabilities");
}

TEST_F(ParseTest, LeadingPpCollected) {
  SentenceParse p =
      Parse("Unlike the old model, the NR70 does not require an adapter.");
  bool found_unlike = false;
  for (const PpAttachment& pp : p.pps) {
    if (pp.preposition == "unlike") {
      found_unlike = true;
      EXPECT_EQ(ChunkText(p, pp.np_chunk), "the old model");
    }
  }
  EXPECT_TRUE(found_unlike);
  EXPECT_EQ(ChunkText(p, p.subject_chunk), "the NR70");
}

TEST_F(ParseTest, SubjectSkipsPpOwnedNp) {
  SentenceParse p =
      Parse("The support in the NR70 series is functional.");
  EXPECT_EQ(ChunkText(p, p.subject_chunk), "The support");
}

// --- Negation ------------------------------------------------------------------------

TEST_F(ParseTest, NegationDetectedInVp) {
  EXPECT_TRUE(Parse("The camera does not work.").vp_negated);
  EXPECT_TRUE(Parse("The camera never works.").vp_negated);
  EXPECT_TRUE(Parse("The camera doesn't work.").vp_negated);
}

TEST_F(ParseTest, NoNegationInPlainSentence) {
  EXPECT_FALSE(Parse("The camera works.").vp_negated);
}

TEST_F(ParseTest, NegationOutsideVpNotFlagged) {
  // "no" inside an NP is phrase-level, not VP-level.
  EXPECT_FALSE(Parse("The camera has no flash.").vp_negated);
}

// --- Structure robustness ---------------------------------------------------------------

TEST_F(ParseTest, VerblessSentenceHasNoPredicate) {
  SentenceParse p = Parse("What a day!");
  EXPECT_EQ(p.predicate_chunk, -1);
}

TEST_F(ParseTest, ChunksTileTheSentence) {
  SentenceParse p = Parse(
      "Unlike the recent models, the NR70 does not require an adapter for "
      "playback, which is a welcome change.");
  ASSERT_FALSE(p.chunks.empty());
  EXPECT_EQ(p.chunks.front().begin, p.span.begin_token);
  EXPECT_EQ(p.chunks.back().end, p.span.end_token);
  for (size_t i = 1; i < p.chunks.size(); ++i) {
    EXPECT_EQ(p.chunks[i].begin, p.chunks[i - 1].end);
  }
}

TEST_F(ParseTest, CopulaRecognition) {
  EXPECT_TRUE(SentenceAnalyzer::IsCopula("be"));
  EXPECT_TRUE(SentenceAnalyzer::IsCopula("seem"));
  EXPECT_TRUE(SentenceAnalyzer::IsCopula("look"));
  EXPECT_FALSE(SentenceAnalyzer::IsCopula("take"));
  EXPECT_FALSE(SentenceAnalyzer::IsCopula("offer"));
}

TEST_F(ParseTest, ChunkTypeNames) {
  EXPECT_EQ(ChunkTypeName(ChunkType::kNP), "NP");
  EXPECT_EQ(ChunkTypeName(ChunkType::kVP), "VP");
  EXPECT_EQ(ChunkTypeName(ChunkType::kPP), "PP");
  EXPECT_EQ(ChunkTypeName(ChunkType::kADJP), "ADJP");
}

// --- Clause splitting --------------------------------------------------------------

class ClauseTest : public ::testing::Test {
 protected:
  std::vector<text::SentenceSpan> Split(const std::string& sentence) {
    tokens_ = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens_);
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens_, spans[0]);
    return SplitClauses(tokens_, spans[0], tags);
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  text::TokenStream tokens_;
};

TEST_F(ClauseTest, SplitsCoordinatedClauses) {
  auto clauses =
      Split("The camera takes excellent pictures but the battery is "
            "terrible.");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(tokens_[clauses[1].begin_token].text, "but");
}

TEST_F(ClauseTest, NoSplitWithoutSecondVerb) {
  EXPECT_EQ(Split("The picture and the sound are great.").size(), 1u);
}

TEST_F(ClauseTest, NoSplitForVpPartCoordination) {
  // "implemented and functional": no fresh subject after the coordinator.
  EXPECT_EQ(Split("The support is well implemented and functional.").size(),
            1u);
}

TEST_F(ClauseTest, SemicolonSplits) {
  auto clauses =
      Split("The zoom works well; the flash fails constantly.");
  EXPECT_EQ(clauses.size(), 2u);
}

TEST_F(ClauseTest, ClausesTileTheSentence) {
  auto clauses = Split(
      "I love the lens and the grip feels solid but the menu confuses "
      "everyone.");
  ASSERT_GE(clauses.size(), 2u);
  text::TokenStream tokens = tokenizer_.Tokenize(
      "I love the lens and the grip feels solid but the menu confuses "
      "everyone.");
  text::SentenceSplitter splitter;
  auto spans = splitter.Split(tokens);
  EXPECT_EQ(clauses.front().begin_token, spans[0].begin_token);
  EXPECT_EQ(clauses.back().end_token, spans[0].end_token);
  for (size_t i = 1; i < clauses.size(); ++i) {
    EXPECT_EQ(clauses[i].begin_token, clauses[i - 1].end_token);
  }
}

TEST_F(ClauseTest, AnalyzeClausesGivesIndependentPredicates) {
  std::string s =
      "The camera takes excellent pictures but the battery is terrible.";
  tokens_ = tokenizer_.Tokenize(s);
  auto spans = splitter_.Split(tokens_);
  auto tags = tagger_.TagSentence(tokens_, spans[0]);
  SentenceAnalyzer analyzer;
  common::Arena arena;
  common::StringInterner interner(&arena);
  std::vector<SentenceParse> parses =
      analyzer.AnalyzeClauses(tokens_, spans[0], tags, &interner);
  ASSERT_EQ(parses.size(), 2u);
  EXPECT_EQ(parses[0].predicate_lemma, "take");
  EXPECT_EQ(parses[1].predicate_lemma, "be");
}

}  // namespace
}  // namespace wf::parse
