// Cross-module integration tests: the paper's qualitative claims must hold
// on (small) end-to-end runs — who wins, in which direction, and by a
// meaningful margin. The full-size reproductions live in bench/.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/reviewseer.h"
#include "corpus/datasets.h"
#include "corpus/review_gen.h"
#include "corpus/web_gen.h"
#include "eval/evaluator.h"
#include "feature/feature_extractor.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

namespace wf {
namespace {

using lexicon::Polarity;

class IntegrationTest : public ::testing::Test {
 protected:
  // Function-local statics share the (expensive) corpus across the suite
  // without SetUpTestSuite's leaked raw pointers.
  static const std::vector<corpus::GeneratedDoc>& reviews() {
    static const std::vector<corpus::GeneratedDoc> kReviews =
        corpus::GenerateReviews(corpus::CameraDomain(), 120, 42);
    return kReviews;
  }
  static eval::GoldEvaluator& evaluator() {
    static eval::GoldEvaluator kEvaluator;
    return kEvaluator;
  }
};

TEST_F(IntegrationTest, MinerPrecisionFarAboveCollocation) {
  eval::EvalOptions options;
  eval::Confusion sm = evaluator().EvaluateMiner(reviews(), options);
  eval::Confusion colloc =
      evaluator().EvaluateCollocation(reviews(), options);
  EXPECT_GT(sm.precision(), 0.8);
  EXPECT_LT(colloc.precision(), 0.4);
  EXPECT_GT(sm.precision(), colloc.precision() + 0.4);
}

TEST_F(IntegrationTest, CollocationRecallAboveMiner) {
  eval::EvalOptions options;
  eval::Confusion sm = evaluator().EvaluateMiner(reviews(), options);
  eval::Confusion colloc =
      evaluator().EvaluateCollocation(reviews(), options);
  EXPECT_GT(colloc.recall(), sm.recall());
}

TEST_F(IntegrationTest, MinerAccuracyHighOnReviews) {
  eval::Confusion sm =
      evaluator().EvaluateMiner(reviews(), eval::EvalOptions{});
  EXPECT_GT(sm.accuracy(), 0.8);
  EXPECT_GT(sm.recall(), 0.45);
  EXPECT_LT(sm.recall(), 0.75);  // B-class cases bound recall by design
}

TEST_F(IntegrationTest, ReviewSeerStrongOnReviewsWeakOnWeb) {
  // Train on reviews.
  std::vector<corpus::GeneratedDoc> train =
      corpus::GenerateReviews(corpus::CameraDomain(), 150, 77);
  baseline::ReviewSeerClassifier rs;
  for (const corpus::GeneratedDoc& d : train) {
    rs.AddTrainingDocument(d.body, d.doc_polarity);
  }
  rs.Train();

  eval::Confusion doc_level =
      evaluator().EvaluateReviewSeerDocuments(rs, reviews());
  EXPECT_GT(doc_level.accuracy(), 0.75);

  corpus::WebDataset web = corpus::BuildPetroleumWebDataset(55);
  eval::EvalOptions candidates;
  candidates.only_sentiment_candidates = true;
  eval::Confusion web_level = evaluator().EvaluateReviewSeerSentences(
      rs, web.docs, /*binary=*/true, candidates);
  // The collapse: doc-level review accuracy far above per-sentence web
  // accuracy (paper: 88.4% -> 38%).
  EXPECT_GT(doc_level.accuracy(), web_level.accuracy() + 0.3);

  // Removing I-class cases helps substantially (paper: 38% -> 68%).
  eval::EvalOptions no_i = candidates;
  no_i.skip_i_class = true;
  eval::Confusion web_no_i = evaluator().EvaluateReviewSeerSentences(
      rs, web.docs, true, no_i);
  EXPECT_GT(web_no_i.accuracy(), web_level.accuracy() + 0.2);
}

TEST_F(IntegrationTest, MinerHoldsUpOnWebWhereReviewSeerCollapses) {
  corpus::WebDataset web = corpus::BuildPharmaWebDataset(66);
  eval::Confusion sm =
      evaluator().EvaluateMiner(web.docs, eval::EvalOptions{});
  EXPECT_GT(sm.accuracy(), 0.85);
  EXPECT_GT(sm.precision(), 0.8);
}

TEST_F(IntegrationTest, FeatureExtractionPrecisionHigh) {
  feature::FeatureExtractor extractor;
  for (const corpus::GeneratedDoc& d : reviews()) {
    extractor.AddDocument(d.body, true);
  }
  for (const corpus::GeneratedDoc& d :
       corpus::GenerateOffTopicDocs(300, 43)) {
    extractor.AddDocument(d.body, false);
  }
  std::vector<feature::FeatureTerm> terms = extractor.Extract();
  ASSERT_GT(terms.size(), 10u);

  const auto& gold = corpus::CameraDomain().features;
  size_t correct = 0;
  for (const feature::FeatureTerm& t : terms) {
    if (std::find(gold.begin(), gold.end(), t.phrase) != gold.end()) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / terms.size(), 0.9);
}

TEST_F(IntegrationTest, ModeBPipelineAgreesWithModeA) {
  // Mode A (predefined subjects) and Mode B (ad-hoc via NER + index) must
  // broadly agree on product-level polarity counts.
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  corpus::WebDataset web = corpus::BuildPetroleumWebDataset(88);

  // Mode A.
  core::SentimentMiner::Config config;
  config.record_neutral = false;
  core::SentimentMiner miner(&lexicon, &patterns, config);
  int id = 0;
  for (const corpus::Product& p : web.domain->products) {
    miner.AddSubject({id++, p.name, p.variants});
  }
  core::SentimentStore store;
  for (const corpus::GeneratedDoc& d : web.docs) {
    miner.ProcessDocument(d.id, d.body, &store);
  }

  // Mode B through the platform.
  platform::Cluster cluster(2);
  std::vector<std::pair<std::string, std::string>> docs;
  for (const corpus::GeneratedDoc& d : web.docs) {
    docs.emplace_back(d.id, d.body);
  }
  platform::BatchIngestor ingestor("web", std::move(docs));
  platform::IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();
  platform::SentimentQueryService service(&cluster);
  ASSERT_TRUE(service.RegisterService().ok());

  for (const corpus::Product& p : web.domain->products) {
    core::SentimentStore::PageAggregate a = store.PagesForSubject(p.name);
    platform::SentimentQueryResult b = service.Query(p.name);
    if (a.pages_positive + a.pages_negative == 0) continue;
    // Same direction (both modes agree who leans positive), allowing NER
    // coverage differences.
    double share_a =
        static_cast<double>(a.pages_positive) /
        static_cast<double>(a.pages_positive + a.pages_negative);
    double share_b =
        static_cast<double>(b.positive_docs) /
        static_cast<double>(b.positive_docs + b.negative_docs);
    EXPECT_NEAR(share_a, share_b, 0.25) << p.name;
  }
}

TEST_F(IntegrationTest, AblationNegationMattersForPrecision) {
  eval::EvalOptions with;
  eval::EvalOptions without;
  without.analyzer.handle_negation = false;
  eval::Confusion c_with = evaluator().EvaluateMiner(reviews(), with);
  eval::Confusion c_without =
      evaluator().EvaluateMiner(reviews(), without);
  EXPECT_GT(c_with.precision(), c_without.precision());
}

}  // namespace
}  // namespace wf
