#include <gtest/gtest.h>

#include "text/inflection.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::text {
namespace {

std::vector<std::string> Surfaces(const TokenStream& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.emplace_back(t.text);
  return out;
}

// --- Tokenizer -----------------------------------------------------------------

TEST(TokenizerTest, SimpleSentence) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("The camera works.")),
            (std::vector<std::string>{"The", "camera", "works", "."}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, PunctuationIsSeparate) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("Wow, really?")),
            (std::vector<std::string>{"Wow", ",", "really", "?"}));
}

TEST(TokenizerTest, CliticsSplitPennStyle) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("don't")),
            (std::vector<std::string>{"do", "n't"}));
  EXPECT_EQ(Surfaces(t.Tokenize("it's")),
            (std::vector<std::string>{"it", "'s"}));
  EXPECT_EQ(Surfaces(t.Tokenize("we'll we've they're I'm I'd")),
            (std::vector<std::string>{"we", "'ll", "we", "'ve", "they",
                                      "'re", "I", "'m", "I", "'d"}));
}

TEST(TokenizerTest, CliticSplitDisabled) {
  TokenizerOptions options;
  options.split_clitics = false;
  Tokenizer t(options);
  EXPECT_EQ(Surfaces(t.Tokenize("don't")),
            (std::vector<std::string>{"don't"}));
}

TEST(TokenizerTest, AbbreviationsKeepPeriod) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("Prof. Wilson met Dr. Smith.")),
            (std::vector<std::string>{"Prof.", "Wilson", "met", "Dr.",
                                      "Smith", "."}));
}

TEST(TokenizerTest, DottedAcronym) {
  Tokenizer t;
  std::vector<std::string> got = Surfaces(t.Tokenize("The U.S. market"));
  EXPECT_EQ(got, (std::vector<std::string>{"The", "U.S.", "market"}));
}

TEST(TokenizerTest, NumbersWithDecimalAndComma) {
  Tokenizer t;
  TokenStream tokens = t.Tokenize("It costs 1,299.50 dollars");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].text, "1,299.50");
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
}

TEST(TokenizerTest, HyphenatedWordStaysTogether) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("an add-on adapter")),
            (std::vector<std::string>{"an", "add-on", "adapter"}));
}

TEST(TokenizerTest, EllipsisAndRepeatedMarks) {
  Tokenizer t;
  EXPECT_EQ(Surfaces(t.Tokenize("Wait... what!!")),
            (std::vector<std::string>{"Wait", "...", "what", "!!"}));
}

TEST(TokenizerTest, OffsetsCoverSourceSlices) {
  Tokenizer t;
  std::string input = "The NR70, unlike the T series, doesn't lag.";
  for (const Token& tok : t.Tokenize(input)) {
    ASSERT_LE(tok.end, input.size());
    ASSERT_LT(tok.begin, tok.end);
  }
}

TEST(TokenizerTest, OffsetsMonotoneNonOverlapping) {
  Tokenizer t;
  std::string input =
      "I bought it on March 3rd; the U.S. price was $399.99 (too high!).";
  TokenStream tokens = t.Tokenize(input);
  for (size_t i = 1; i < tokens.size(); ++i) {
    EXPECT_GE(tokens[i].begin, tokens[i - 1].begin);
    EXPECT_LE(tokens[i - 1].end, tokens[i].end);
  }
}

TEST(TokenizerTest, NonCliticTokensMatchSourceSlice) {
  Tokenizer t;
  std::string input = "The Memory Stick support is well implemented.";
  for (const Token& tok : t.Tokenize(input)) {
    EXPECT_EQ(tok.text, input.substr(tok.begin, tok.end - tok.begin));
  }
}

TEST(TokenizerTest, SymbolsClassified) {
  Tokenizer t;
  TokenStream tokens = t.Tokenize("$ % &");
  ASSERT_EQ(tokens.size(), 3u);
  for (const Token& tok : tokens) {
    EXPECT_EQ(tok.kind, TokenKind::kSymbol);
  }
}

// --- Sentence splitter -----------------------------------------------------------

std::vector<size_t> SentenceSizes(const std::string& text) {
  Tokenizer t;
  SentenceSplitter s;
  TokenStream tokens = t.Tokenize(text);
  std::vector<size_t> sizes;
  for (const SentenceSpan& span : s.Split(tokens)) {
    sizes.push_back(span.size());
  }
  return sizes;
}

TEST(SentenceSplitterTest, SplitsOnTerminators) {
  EXPECT_EQ(SentenceSizes("One two. Three! Four?").size(), 3u);
}

TEST(SentenceSplitterTest, AbbreviationDoesNotSplit) {
  EXPECT_EQ(SentenceSizes("Dr. Smith arrived. He left.").size(), 2u);
}

TEST(SentenceSplitterTest, TrailingTextWithoutTerminator) {
  EXPECT_EQ(SentenceSizes("Complete sentence. trailing fragment").size(),
            2u);
}

TEST(SentenceSplitterTest, EmptyInput) {
  EXPECT_TRUE(SentenceSizes("").empty());
}

TEST(SentenceSplitterTest, ClosingQuoteStaysInSentence) {
  Tokenizer t;
  SentenceSplitter s;
  TokenStream tokens = t.Tokenize("He said \"go.\" Then left.");
  std::vector<SentenceSpan> spans = s.Split(tokens);
  ASSERT_EQ(spans.size(), 2u);
  // The quote after the period belongs to the first sentence.
  EXPECT_EQ(tokens[spans[0].end_token - 1].text, "\"");
}

TEST(SentenceSplitterTest, SpansPartitionTheStream) {
  Tokenizer t;
  SentenceSplitter s;
  TokenStream tokens =
      t.Tokenize("First one. Second one! Third? And a fragment");
  std::vector<SentenceSpan> spans = s.Split(tokens);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().begin_token, 0u);
  EXPECT_EQ(spans.back().end_token, tokens.size());
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].begin_token, spans[i - 1].end_token);
  }
}

// --- Inflection -------------------------------------------------------------------

struct InflectionCase {
  const char* input;
  const char* expected;
};

class SingularizeTest : public ::testing::TestWithParam<InflectionCase> {};

TEST_P(SingularizeTest, Singularizes) {
  EXPECT_EQ(SingularizeNoun(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Nouns, SingularizeTest,
    ::testing::Values(
        InflectionCase{"cameras", "camera"},
        InflectionCase{"batteries", "battery"},
        InflectionCase{"lenses", "lens"},
        InflectionCase{"lens", "lens"},
        InflectionCase{"watches", "watch"},
        InflectionCase{"glasses", "glass"},
        InflectionCase{"boxes", "box"},
        InflectionCase{"children", "child"},
        InflectionCase{"people", "person"},
        InflectionCase{"mice", "mouse"},
        InflectionCase{"series", "series"},
        InflectionCase{"analysis", "analysis"},
        InflectionCase{"heroes", "hero"},
        InflectionCase{"lives", "life"},
        InflectionCase{"camera", "camera"},
        InflectionCase{"bus", "bus"},
        InflectionCase{"news", "news"}));

class VerbLemmaTest : public ::testing::TestWithParam<InflectionCase> {};

TEST_P(VerbLemmaTest, Lemmatizes) {
  EXPECT_EQ(VerbLemma(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Verbs, VerbLemmaTest,
    ::testing::Values(
        InflectionCase{"takes", "take"}, InflectionCase{"took", "take"},
        InflectionCase{"taken", "take"}, InflectionCase{"taking", "take"},
        InflectionCase{"is", "be"}, InflectionCase{"was", "be"},
        InflectionCase{"were", "be"}, InflectionCase{"been", "be"},
        InflectionCase{"impressed", "impress"},
        InflectionCase{"impresses", "impress"},
        InflectionCase{"loved", "love"}, InflectionCase{"loves", "love"},
        InflectionCase{"amazed", "amaze"},
        InflectionCase{"stopped", "stop"},
        InflectionCase{"planning", "plan"},
        InflectionCase{"carries", "carry"},
        InflectionCase{"satisfied", "satisfy"},
        InflectionCase{"watches", "watch"},
        InflectionCase{"passes", "pass"},
        InflectionCase{"called", "call"},
        InflectionCase{"failed", "fail"},
        InflectionCase{"delivered", "deliver"},
        InflectionCase{"works", "work"},
        InflectionCase{"thought", "think"},
        InflectionCase{"bought", "buy"},
        InflectionCase{"went", "go"},
        InflectionCase{"offers", "offer"},
        InflectionCase{"equipped", "equip"},
        InflectionCase{"'s", "be"}, InflectionCase{"'re", "be"}));

class AdjectiveBaseTest : public ::testing::TestWithParam<InflectionCase> {};

TEST_P(AdjectiveBaseTest, Bases) {
  EXPECT_EQ(AdjectiveBase(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Adjectives, AdjectiveBaseTest,
    ::testing::Values(InflectionCase{"bigger", "big"},
                      InflectionCase{"biggest", "big"},
                      InflectionCase{"happier", "happy"},
                      InflectionCase{"nicer", "nice"},
                      InflectionCase{"better", "good"},
                      InflectionCase{"worst", "bad"},
                      InflectionCase{"sharp", "sharp"},
                      InflectionCase{"sharper", "sharp"}));

TEST(NegationWordTest, RecognizesPaperList) {
  // §4.2: not, no, never, hardly, seldom, little.
  for (const char* w :
       {"not", "no", "never", "hardly", "seldom", "little", "n't"}) {
    EXPECT_TRUE(IsNegationWord(w)) << w;
  }
  EXPECT_FALSE(IsNegationWord("very"));
  EXPECT_FALSE(IsNegationWord("lacks"));
  EXPECT_TRUE(IsNegationWord("Never"));  // case-insensitive
}

}  // namespace
}  // namespace wf::text
