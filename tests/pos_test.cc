#include <gtest/gtest.h>

#include "pos/tag_lexicon.h"
#include "pos/tagger.h"
#include "pos/tagset.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::pos {
namespace {

// --- Tagset ---------------------------------------------------------------------

TEST(TagsetTest, NameParseRoundTrip) {
  for (int i = 0; i < kNumPosTags; ++i) {
    PosTag t = static_cast<PosTag>(i);
    if (t == PosTag::kPunct || t == PosTag::kUnknown) continue;
    EXPECT_EQ(ParsePosTag(PosTagName(t)), t) << PosTagName(t);
  }
}

TEST(TagsetTest, UnknownNameParsesToUnknown) {
  EXPECT_EQ(ParsePosTag("XYZ"), PosTag::kUnknown);
  EXPECT_EQ(ParsePosTag(""), PosTag::kUnknown);
}

TEST(TagsetTest, CoarseClasses) {
  EXPECT_TRUE(IsNounTag(PosTag::kNN));
  EXPECT_TRUE(IsNounTag(PosTag::kNNPS));
  EXPECT_FALSE(IsNounTag(PosTag::kJJ));
  EXPECT_TRUE(IsVerbTag(PosTag::kVBG));
  EXPECT_FALSE(IsVerbTag(PosTag::kMD));
  EXPECT_TRUE(IsAdjectiveTag(PosTag::kJJS));
  EXPECT_TRUE(IsAdverbTag(PosTag::kRBR));
  EXPECT_TRUE(IsProperNounTag(PosTag::kNNP));
  EXPECT_FALSE(IsProperNounTag(PosTag::kNN));
  EXPECT_TRUE(IsCommonNounTag(PosTag::kNNS));
  EXPECT_FALSE(IsCommonNounTag(PosTag::kNNP));
}

TEST(TagLexiconTest, EmbeddedLexiconNonTrivial) {
  size_t count = 0;
  const TagLexiconEntry* entries = EmbeddedTagLexicon(&count);
  ASSERT_NE(entries, nullptr);
  EXPECT_GT(count, 700u);
}

// --- Tagger ---------------------------------------------------------------------

class TaggerTest : public ::testing::Test {
 protected:
  // Tags a single sentence; returns tags aligned to tokens.
  std::vector<PosTag> Tag(const std::string& sentence) {
    tokens_ = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens_);
    return tagger_.TagSentence(tokens_, spans[0]);
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  PosTagger tagger_;
  text::TokenStream tokens_;
};

TEST_F(TaggerTest, SimpleDeclarative) {
  std::vector<PosTag> tags = Tag("The camera takes excellent pictures.");
  EXPECT_EQ(tags[0], PosTag::kDT);
  EXPECT_EQ(tags[1], PosTag::kNN);
  EXPECT_EQ(tags[2], PosTag::kVBZ);
  EXPECT_EQ(tags[3], PosTag::kJJ);
  EXPECT_EQ(tags[4], PosTag::kNNS);
  EXPECT_EQ(tags[5], PosTag::kPunct);
}

TEST_F(TaggerTest, UnknownCapitalizedMidSentenceIsProperNoun) {
  std::vector<PosTag> tags = Tag("I bought the Zorblatt yesterday.");
  EXPECT_EQ(tags[3], PosTag::kNNP);
}

TEST_F(TaggerTest, ProductCodesAreProperNouns) {
  std::vector<PosTag> tags = Tag("The NR70 works.");
  EXPECT_EQ(tags[1], PosTag::kNNP);
}

TEST_F(TaggerTest, NumbersAreCardinal) {
  std::vector<PosTag> tags = Tag("It costs 399 dollars.");
  EXPECT_EQ(tags[2], PosTag::kCD);
}

TEST_F(TaggerTest, UnknownLyWordIsAdverb) {
  std::vector<PosTag> tags = Tag("It behaves squonkily.");
  EXPECT_EQ(tags[2], PosTag::kRB);
}

TEST_F(TaggerTest, UnknownSuffixGuesses) {
  std::vector<PosTag> tags = Tag("a frobnicative gadget");
  EXPECT_EQ(tags[1], PosTag::kJJ);  // -ive
}

TEST_F(TaggerTest, VerbAfterDeterminerBecomesNoun) {
  // "zoom" is VB-first in the lexicon; after "the" it must be a noun.
  std::vector<PosTag> tags = Tag("The zoom is great.");
  EXPECT_EQ(tags[1], PosTag::kNN);
}

TEST_F(TaggerTest, NounAfterModalBecomesVerb) {
  std::vector<PosTag> tags = Tag("It can zoom quickly.");
  EXPECT_EQ(tags[2], PosTag::kVB);
}

TEST_F(TaggerTest, PastParticipleAfterBeAux) {
  std::vector<PosTag> tags = Tag("I was impressed by it.");
  EXPECT_EQ(tags[2], PosTag::kVBN);
}

TEST_F(TaggerTest, PastParticipleAfterAuxWithAdverb) {
  std::vector<PosTag> tags = Tag("I was really impressed by it.");
  EXPECT_EQ(tags[3], PosTag::kVBN);
}

TEST_F(TaggerTest, PastTenseWithoutAux) {
  std::vector<PosTag> tags = Tag("The lens impressed everyone.");
  EXPECT_EQ(tags[2], PosTag::kVBD);
}

TEST_F(TaggerTest, NnsVsVbzByContext) {
  // "works" after a noun is a verb...
  std::vector<PosTag> tags = Tag("The camera works well.");
  EXPECT_EQ(tags[2], PosTag::kVBZ);
  // ...and after an adjective it is a plural noun.
  tags = Tag("These are great works.");
  EXPECT_EQ(tags[3], PosTag::kNNS);
}

TEST_F(TaggerTest, ThatAsDeterminerBeforeNoun) {
  std::vector<PosTag> tags = Tag("I love that camera.");
  EXPECT_EQ(tags[2], PosTag::kDT);
}

TEST_F(TaggerTest, ThatAsComplementizer) {
  std::vector<PosTag> tags = Tag("I know that it works.");
  EXPECT_EQ(tags[2], PosTag::kIN);
}

TEST_F(TaggerTest, NounCompoundAfterProperNoun) {
  std::vector<PosTag> tags = Tag("The Memory Stick support is functional.");
  EXPECT_EQ(tags[3], PosTag::kNN);  // "support", not VB
}

TEST_F(TaggerTest, CliticNegationIsAdverb) {
  std::vector<PosTag> tags = Tag("It doesn't work.");
  EXPECT_EQ(tags[2], PosTag::kRB);  // n't
}

TEST_F(TaggerTest, TagWholeStreamAlignsWithTokens) {
  text::TokenStream tokens =
      tokenizer_.Tokenize("First sentence here. Second one follows.");
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  std::vector<PosTag> tags = tagger_.Tag(tokens, spans);
  ASSERT_EQ(tags.size(), tokens.size());
  for (PosTag t : tags) EXPECT_NE(t, PosTag::kUnknown);
}

TEST_F(TaggerTest, LookupFindsLexiconWord) {
  EXPECT_NE(tagger_.Lookup("the"), nullptr);
  EXPECT_EQ(tagger_.Lookup("zzyzx"), nullptr);
}

}  // namespace
}  // namespace wf::pos
