// Randomized property tests: components are cross-checked against
// brute-force reference implementations on generated inputs. All RNG is
// seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "platform/entity.h"
#include "platform/indexer.h"
#include "platform/vinci.h"
#include "spot/spotter.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf {
namespace {

// Random word of lowercase letters.
std::string RandomWord(common::Rng& rng, size_t max_len = 8) {
  size_t len = static_cast<size_t>(rng.Uniform(1, static_cast<int64_t>(max_len)));
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + rng.Uniform(0, 25));
  }
  return out;
}

// Random "document" from a small shared vocabulary (so terms collide).
std::string RandomDoc(common::Rng& rng,
                      const std::vector<std::string>& vocab,
                      size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (!out.empty()) out += ' ';
    out += rng.Pick(vocab);
    if (rng.Bernoulli(0.1)) out += '.';
  }
  return out;
}

// --- Tokenizer properties ------------------------------------------------------

TEST(TokenizerProperty, OffsetsAlwaysValidOnRandomAscii) {
  common::Rng rng(1001);
  text::Tokenizer tokenizer;
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = static_cast<size_t>(rng.Uniform(0, 120));
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.Uniform(32, 126));
    }
    text::TokenStream tokens = tokenizer.Tokenize(input);
    size_t prev_end = 0;
    for (const text::Token& t : tokens) {
      ASSERT_FALSE(t.text.empty()) << "input: " << input;
      ASSERT_LT(t.begin, t.end) << "input: " << input;
      ASSERT_LE(t.end, input.size()) << "input: " << input;
      ASSERT_GE(t.begin, prev_end) << "overlap in: " << input;
      prev_end = t.end;
    }
  }
}

TEST(TokenizerProperty, SentenceSpansPartitionAnyStream) {
  common::Rng rng(1002);
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  std::vector<std::string> vocab;
  for (int i = 0; i < 30; ++i) vocab.push_back(RandomWord(rng));
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc = RandomDoc(rng, vocab, 40);
    text::TokenStream tokens = tokenizer.Tokenize(doc);
    std::vector<text::SentenceSpan> spans = splitter.Split(tokens);
    size_t covered = 0;
    size_t expect_begin = 0;
    for (const text::SentenceSpan& s : spans) {
      ASSERT_EQ(s.begin_token, expect_begin);
      ASSERT_GT(s.end_token, s.begin_token);
      covered += s.size();
      expect_begin = s.end_token;
    }
    ASSERT_EQ(covered, tokens.size()) << doc;
  }
}

// --- Spotter vs naive matching ----------------------------------------------------

TEST(SpotterProperty, MatchesNaiveSingleTermScan) {
  common::Rng rng(1003);
  text::Tokenizer tokenizer;
  std::vector<std::string> vocab;
  for (int i = 0; i < 12; ++i) vocab.push_back(RandomWord(rng, 5));

  for (int trial = 0; trial < 100; ++trial) {
    const std::string& needle = rng.Pick(vocab);
    spot::Spotter spotter;
    spotter.AddSynonymSet({1, needle, {}});
    std::string doc = RandomDoc(rng, vocab, 50);
    text::TokenStream tokens = tokenizer.Tokenize(doc);

    size_t naive = 0;
    for (const text::Token& t : tokens) {
      if (common::EqualsIgnoreCase(t.text, needle)) ++naive;
    }
    EXPECT_EQ(spotter.Spot(tokens).size(), naive) << doc;
  }
}

TEST(SpotterProperty, SpotsNeverOverlap) {
  common::Rng rng(1004);
  text::Tokenizer tokenizer;
  std::vector<std::string> vocab{"alpha", "beta", "gamma", "delta"};
  spot::Spotter spotter;
  spotter.AddSynonymSet({1, "alpha", {}});
  spotter.AddSynonymSet({2, "alpha beta", {}});
  spotter.AddSynonymSet({3, "beta gamma delta", {}});
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc = RandomDoc(rng, vocab, 30);
    text::TokenStream tokens = tokenizer.Tokenize(doc);
    std::vector<spot::SubjectSpot> spots = spotter.Spot(tokens);
    for (size_t i = 1; i < spots.size(); ++i) {
      ASSERT_GE(spots[i].begin_token, spots[i - 1].end_token) << doc;
    }
  }
}

// --- Inverted index vs brute force ---------------------------------------------------

class IndexProperty : public ::testing::Test {
 protected:
  IndexProperty() : rng_(1005) {
    for (int i = 0; i < 15; ++i) vocab_.push_back(RandomWord(rng_, 6));
    for (int d = 0; d < 40; ++d) {
      std::string id = "doc-" + std::to_string(d);
      std::string body = RandomDoc(rng_, vocab_, 25);
      bodies_[id] = body;
      platform::Entity e(id, "prop");
      e.SetBody(body);
      index_.IndexEntity(e);
    }
  }

  // Brute-force: docs whose tokenized body contains the term.
  std::vector<std::string> NaiveTerm(const std::string& term) {
    text::Tokenizer tokenizer;
    std::vector<std::string> out;
    for (const auto& [id, body] : bodies_) {
      for (const text::Token& t : tokenizer.Tokenize(body)) {
        if (common::EqualsIgnoreCase(t.text, term)) {
          out.push_back(id);
          break;
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  common::Rng rng_;
  std::vector<std::string> vocab_;
  std::map<std::string, std::string> bodies_;
  platform::InvertedIndex index_;
};

TEST_F(IndexProperty, TermQueryMatchesBruteForce) {
  for (const std::string& term : vocab_) {
    EXPECT_EQ(index_.Term(term), NaiveTerm(term)) << term;
  }
}

TEST_F(IndexProperty, AndIsIntersection) {
  for (int trial = 0; trial < 30; ++trial) {
    const std::string& a = rng_.Pick(vocab_);
    const std::string& b = rng_.Pick(vocab_);
    std::vector<std::string> expected;
    std::vector<std::string> da = NaiveTerm(a), db = NaiveTerm(b);
    std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(index_.And({a, b}), expected) << a << " AND " << b;
  }
}

TEST_F(IndexProperty, OrIsUnion) {
  for (int trial = 0; trial < 30; ++trial) {
    const std::string& a = rng_.Pick(vocab_);
    const std::string& b = rng_.Pick(vocab_);
    std::set<std::string> expected;
    for (auto& d : NaiveTerm(a)) expected.insert(d);
    for (auto& d : NaiveTerm(b)) expected.insert(d);
    EXPECT_EQ(index_.Or({a, b}),
              std::vector<std::string>(expected.begin(), expected.end()));
  }
}

TEST_F(IndexProperty, NotIsDifference) {
  for (int trial = 0; trial < 30; ++trial) {
    const std::string& a = rng_.Pick(vocab_);
    const std::string& b = rng_.Pick(vocab_);
    std::vector<std::string> expected;
    std::vector<std::string> da = NaiveTerm(a), db = NaiveTerm(b);
    std::set_difference(da.begin(), da.end(), db.begin(), db.end(),
                        std::back_inserter(expected));
    EXPECT_EQ(index_.Not(a, b), expected);
  }
}

TEST_F(IndexProperty, PhraseMatchesSubstringScan) {
  text::Tokenizer tokenizer;
  for (int trial = 0; trial < 30; ++trial) {
    const std::string& a = rng_.Pick(vocab_);
    const std::string& b = rng_.Pick(vocab_);
    std::vector<std::string> expected;
    for (const auto& [id, body] : bodies_) {
      text::TokenStream tokens = tokenizer.Tokenize(body);
      for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (common::EqualsIgnoreCase(tokens[i].text, a) &&
            common::EqualsIgnoreCase(tokens[i + 1].text, b)) {
          expected.push_back(id);
          break;
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(index_.Phrase({a, b}), expected) << a << " " << b;
  }
}

TEST_F(IndexProperty, PhraseNeverCrossesPunctuation) {
  // Positions are token positions including punctuation gaps, so a phrase
  // split by '.' must not match... punctuation tokens are skipped during
  // indexing but positions still advance per word; adjacency is preserved
  // only for genuinely adjacent word tokens within the stream.
  platform::InvertedIndex index;
  platform::Entity e("p", "t");
  e.SetBody("alpha. beta");
  index.IndexEntity(e);
  // "alpha" and "beta" are adjacent word tokens in token-position space
  // only if the '.' does not intervene; the tokenizer emits '.' as a
  // token, so positions differ by 2 and the phrase must miss.
  EXPECT_TRUE(index.Phrase({"alpha", "beta"}).empty());
}

// --- Entity serialization fuzz ---------------------------------------------------------

TEST(EntityProperty, RoundTripsRandomContent) {
  common::Rng rng(1006);
  for (int trial = 0; trial < 100; ++trial) {
    platform::Entity e("id-" + std::to_string(trial), RandomWord(rng));
    // Random fields with hostile characters.
    size_t fields = static_cast<size_t>(rng.Uniform(0, 4));
    for (size_t f = 0; f < fields; ++f) {
      std::string value;
      size_t len = static_cast<size_t>(rng.Uniform(0, 30));
      for (size_t i = 0; i < len; ++i) {
        int c = static_cast<int>(rng.Uniform(0, 4));
        value += c == 0 ? '\n' : c == 1 ? '\t' : c == 2 ? '\\' : 'x';
      }
      e.SetField(RandomWord(rng), value);
    }
    size_t anns = static_cast<size_t>(rng.Uniform(0, 3));
    for (size_t a = 0; a < anns; ++a) {
      platform::AnnotationSpan span;
      span.begin = static_cast<size_t>(rng.Uniform(0, 100));
      span.end = span.begin + static_cast<size_t>(rng.Uniform(1, 20));
      span.attrs[RandomWord(rng)] = RandomWord(rng) + "\nwith=equals";
      e.AddAnnotation(RandomWord(rng), span);
    }
    if (rng.Bernoulli(0.5)) e.AddConceptToken("sent/+/" + RandomWord(rng));

    auto restored = platform::Entity::Deserialize(e.Serialize());
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, e);
  }
}

// --- Vinci wire format fuzz ---------------------------------------------------------------

TEST(VinciProperty, WireRoundTripsRandomPayloads) {
  common::Rng rng(1007);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<std::string, std::string>> pairs;
    size_t n = static_cast<size_t>(rng.Uniform(0, 6));
    for (size_t i = 0; i < n; ++i) {
      std::string value;
      size_t len = static_cast<size_t>(rng.Uniform(0, 20));
      for (size_t k = 0; k < len; ++k) {
        int c = static_cast<int>(rng.Uniform(0, 5));
        value += c == 0 ? '\n' : c == 1 ? '\\' : c == 2 ? '=' : 'y';
      }
      pairs.emplace_back(RandomWord(rng), value);
    }
    EXPECT_EQ(platform::DecodeMessage(platform::EncodeMessage(pairs)),
              pairs);
  }
}

TEST(VinciProperty, WireRoundTripsHostileKeys) {
  // Keys get the same adversarial treatment as values: separators (`=`),
  // record terminators (`\n`), escape characters, and the *literal*
  // two-character sequence "\n" (backslash then 'n'), which must not be
  // confused with a real newline on the way back.
  common::Rng rng(1008);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<std::string, std::string>> pairs;
    size_t n = static_cast<size_t>(rng.Uniform(0, 6));
    for (size_t i = 0; i < n; ++i) {
      std::string key;
      size_t klen = static_cast<size_t>(rng.Uniform(0, 12));
      for (size_t k = 0; k < klen; ++k) {
        switch (static_cast<int>(rng.Uniform(0, 6))) {
          case 0: key += '='; break;
          case 1: key += '\n'; break;
          case 2: key += '\\'; break;
          case 3: key += "\\n"; break;  // literal backslash-n
          default: key += 'k'; break;
        }
      }
      std::string value;
      size_t vlen = static_cast<size_t>(rng.Uniform(0, 12));
      for (size_t k = 0; k < vlen; ++k) {
        switch (static_cast<int>(rng.Uniform(0, 6))) {
          case 0: value += '='; break;
          case 1: value += '\n'; break;
          case 2: value += '\\'; break;
          case 3: value += "\\n"; break;
          default: value += 'v'; break;
        }
      }
      pairs.emplace_back(std::move(key), std::move(value));
    }
    EXPECT_EQ(platform::DecodeMessage(platform::EncodeMessage(pairs)),
              pairs);
  }
}

}  // namespace
}  // namespace wf
