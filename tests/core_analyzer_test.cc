#include "core/analyzer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wf {
namespace {

using core::SentimentSource;
using lexicon::Polarity;
using wf::testing::Pipeline;

class AnalyzerTest : public ::testing::Test {
 protected:
  Pipeline pipeline_;
};

// --- The paper's worked examples (§4.2) -----------------------------------

TEST_F(AnalyzerTest, ImpressedByFlashCapabilities) {
  EXPECT_EQ(pipeline_.Analyze("I am impressed by the flash capabilities.",
                              "flash capabilities"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, CameraTakesExcellentPictures) {
  EXPECT_EQ(pipeline_.Analyze("This camera takes excellent pictures.",
                              "camera"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, ColorsAreVibrant) {
  EXPECT_EQ(pipeline_.Analyze("The colors are vibrant.", "colors"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, CompanyOffersHighQualityProducts) {
  EXPECT_EQ(pipeline_.Analyze("The company offers high quality products.",
                              "company"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, CompanyOffersMediocreServices) {
  EXPECT_EQ(pipeline_.Analyze("The company offers mediocre services.",
                              "company"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, PictureIsFlawless) {
  EXPECT_EQ(pipeline_.Analyze("The picture is flawless.", "picture"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, ProductFailsToMeetExpectations) {
  EXPECT_EQ(pipeline_.Analyze(
                "The product fails to meet our quality expectations.",
                "product"),
            Polarity::kNegative);
}

// --- The NR70 / T series CLIEs multi-subject examples (§1.2) ---------------

TEST_F(AnalyzerTest, Nr70DoesNotRequireAdapter) {
  const std::string s =
      "Unlike the more recent T series CLIEs, the NR70 does not require an "
      "add-on adapter for MP3 playback, which is certainly a welcome "
      "change.";
  EXPECT_EQ(pipeline_.Analyze(s, "NR70"), Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze(s, "T series CLIEs"), Polarity::kNegative);
}

TEST_F(AnalyzerTest, MemoryStickSupportWellImplemented) {
  const std::string s =
      "The Memory Stick support in the NR70 series is well implemented and "
      "functional.";
  EXPECT_EQ(pipeline_.Analyze(s, "NR70"), Polarity::kPositive);
}

// --- Negation handling ------------------------------------------------------

TEST_F(AnalyzerTest, NegatedCopulaFlips) {
  EXPECT_EQ(pipeline_.Analyze("The picture is not sharp.", "picture"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, NegatedNegativeBecomesPositive) {
  EXPECT_EQ(pipeline_.Analyze("The camera never fails.", "camera"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, CliticNegation) {
  EXPECT_EQ(pipeline_.Analyze("The software isn't reliable.", "software"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, NegationDisabledByOption) {
  core::AnalyzerOptions options;
  options.handle_negation = false;
  Pipeline no_neg(options);
  EXPECT_EQ(no_neg.Analyze("The picture is not sharp.", "picture"),
            Polarity::kPositive);
}

// --- Pattern families --------------------------------------------------------

TEST_F(AnalyzerTest, ObjectExperiencerActive) {
  EXPECT_EQ(pipeline_.Analyze("The lens impressed everyone.", "lens"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, DisappointedByPassive) {
  EXPECT_EQ(
      pipeline_.Analyze("We were disappointed by the battery.", "battery"),
      Polarity::kNegative);
}

TEST_F(AnalyzerTest, SubjectExperiencerLove) {
  EXPECT_EQ(pipeline_.Analyze("I love this camera.", "camera"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, SubjectExperiencerHate) {
  EXPECT_EQ(pipeline_.Analyze("I hate the menu.", "menu"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, LoveSubjectNotTarget) {
  // "I love X": the lover (SP) gets no sentiment.
  EXPECT_EQ(pipeline_.Analyze("I love this camera.", "I"),
            Polarity::kNeutral);
}

TEST_F(AnalyzerTest, IntransitiveQualityVerbs) {
  EXPECT_EQ(pipeline_.Analyze("The autofocus struggles.", "autofocus"),
            Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze("The zoom excels.", "zoom"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, AdverbialManner) {
  EXPECT_EQ(pipeline_.Analyze("The flash works flawlessly.", "flash"),
            Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze("The software performs poorly.", "software"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, ComparisonVerbs) {
  const std::string s = "The Nikon outperforms the Canon.";
  EXPECT_EQ(pipeline_.Analyze(s, "Nikon"), Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze(s, "Canon"), Polarity::kNegative);
}

TEST_F(AnalyzerTest, RaveAndComplainAbout) {
  EXPECT_EQ(pipeline_.Analyze("Everyone raves about the viewfinder.",
                              "viewfinder"),
            Polarity::kPositive);
  EXPECT_EQ(
      pipeline_.Analyze("Users complain about the battery.", "battery"),
      Polarity::kNegative);
}

TEST_F(AnalyzerTest, LackIsNegative) {
  EXPECT_EQ(pipeline_.Analyze("The NR70 lacks a headphone jack.", "NR70"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, ComesWithTransfer) {
  EXPECT_EQ(pipeline_.Analyze(
                "The camera comes with a generous memory card.", "camera"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, CopulaVariants) {
  EXPECT_EQ(pipeline_.Analyze("The mix seems muddy.", "mix"),
            Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze("The grip feels solid.", "grip"),
            Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze("The chorus sounds lifeless.", "chorus"),
            Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze("The screen looks gorgeous.", "screen"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, BrimWithTransfer) {
  EXPECT_EQ(pipeline_.Analyze("The album brims with catchy melodies.",
                              "album"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, EquipmentPassive) {
  EXPECT_EQ(pipeline_.Analyze(
                "The NR70 is equipped with a memory slot.", "NR70"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, VerdictVerbWithComplement) {
  EXPECT_EQ(pipeline_.Analyze("The report calls the refinery dangerous.",
                              "refinery"),
            Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze("Reviewers call the lens superb.", "lens"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, ObjectDirectedImprovement) {
  EXPECT_EQ(pipeline_.Analyze("The update enhances the autofocus.",
                              "autofocus"),
            Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze("The firmware cripples the playback.",
                              "playback"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, VpAdverbSourcePatterns) {
  EXPECT_EQ(pipeline_.Analyze("The shutter responds swiftly.", "shutter"),
            Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze("The software behaves erratically.",
                              "software"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, NegatedTransferPattern) {
  // Negation over a transfer pattern: "does not take excellent pictures".
  EXPECT_EQ(pipeline_.Analyze(
                "The camera does not take excellent pictures.", "camera"),
            Polarity::kNegative);
}

TEST_F(AnalyzerTest, PassiveVoiceConstraintBlocksActivePattern) {
  // "love + OP active" must not fire for the passive surface subject.
  EXPECT_EQ(pipeline_.Analyze("The camera is loved by reviewers.",
                              "camera"),
            Polarity::kPositive);
  // And the lover in the by-PP stays neutral.
  EXPECT_EQ(pipeline_.Analyze("The camera is loved by reviewers.",
                              "reviewers"),
            Polarity::kNeutral);
}

// --- Neutral cases -----------------------------------------------------------

TEST_F(AnalyzerTest, NeutralFactualSentence) {
  EXPECT_EQ(pipeline_.Analyze("The camera has a 3x zoom lens.", "camera"),
            Polarity::kNeutral);
}

TEST_F(AnalyzerTest, NeutralWhenNoPatternAndNoSentimentWords) {
  EXPECT_EQ(
      pipeline_.Analyze("The company announced a new product.", "company"),
      Polarity::kNeutral);
}

TEST_F(AnalyzerTest, UnknownPredicateIsNeutral) {
  core::SubjectSentiment r = pipeline_.AnalyzeDetailed(
      "The camera weighs twelve ounces.", "camera");
  EXPECT_EQ(r.polarity, Polarity::kNeutral);
}

// --- Sources / explanations ---------------------------------------------------

TEST_F(AnalyzerTest, DirectPatternSource) {
  core::SubjectSentiment r = pipeline_.AnalyzeDetailed(
      "I am impressed by the flash capabilities.", "flash capabilities");
  EXPECT_EQ(r.source, SentimentSource::kDirectPattern);
  EXPECT_FALSE(r.pattern.empty());
}

TEST_F(AnalyzerTest, TransferPatternSource) {
  core::SubjectSentiment r = pipeline_.AnalyzeDetailed(
      "This camera takes excellent pictures.", "camera");
  EXPECT_EQ(r.source, SentimentSource::kTransferPattern);
}

TEST_F(AnalyzerTest, CoordinatedClausesAnalyzedSeparately) {
  const std::string s =
      "The camera takes excellent pictures but the battery is terrible.";
  EXPECT_EQ(pipeline_.Analyze(s, "camera"), Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze(s, "battery"), Polarity::kNegative);
}

TEST_F(AnalyzerTest, SemicolonClauses) {
  const std::string s =
      "The zoom works flawlessly; the flash fails constantly.";
  EXPECT_EQ(pipeline_.Analyze(s, "zoom"), Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze(s, "flash"), Polarity::kNegative);
}

TEST_F(AnalyzerTest, ComparativeThanFlipsForStandard) {
  const std::string s = "The Vistar 4500 is better than the Stylus C50.";
  EXPECT_EQ(pipeline_.Analyze(s, "Vistar 4500"), Polarity::kPositive);
  EXPECT_EQ(pipeline_.Analyze(s, "Stylus C50"), Polarity::kNegative);
}

TEST_F(AnalyzerTest, ComparativeWorseThan) {
  const std::string s = "The flash is worse than the viewfinder.";
  EXPECT_EQ(pipeline_.Analyze(s, "flash"), Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze(s, "viewfinder"), Polarity::kPositive);
}

TEST_F(AnalyzerTest, TooPlusAdjectiveIsExcess) {
  // Excess flips even inherently positive adjectives.
  EXPECT_EQ(pipeline_.Analyze("The menu is too simple.", "menu"),
            Polarity::kNegative);
  EXPECT_EQ(pipeline_.Analyze("The camera is too heavy.", "camera"),
            Polarity::kNegative);
  // Plain use stays positive.
  EXPECT_EQ(pipeline_.Analyze("The menu is simple.", "menu"),
            Polarity::kPositive);
}

TEST_F(AnalyzerTest, LocalNpFallback) {
  core::SubjectSentiment r = pipeline_.AnalyzeDetailed(
      "The superb NR70 arrived yesterday.", "NR70");
  EXPECT_EQ(r.polarity, Polarity::kPositive);
  EXPECT_EQ(r.source, SentimentSource::kLocalNp);
}

}  // namespace
}  // namespace wf
