#include <gtest/gtest.h>

#include <memory>

#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/corpus_miners.h"
#include "platform/geo_miner.h"
#include "platform/indexer.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

namespace wf::platform {
namespace {

Entity Doc(const std::string& id, const std::string& body,
           const std::string& date = "") {
  Entity e(id, "test");
  e.SetBody(body);
  if (!date.empty()) e.SetField("date", date);
  return e;
}

// --- DuplicateDetectionMiner -------------------------------------------------

TEST(DuplicateDetectionTest, FlagsNearDuplicates) {
  DataStore store;
  std::string article =
      "Regulators opened an inquiry into the refinery after the spill. "
      "The cleanup continues along the coast and residents are angry. "
      "Officials promised a full report by the end of the month.";
  // The representative is the first candidate in sorted-id order.
  ASSERT_TRUE(store.Put(Doc("a-orig", article)).ok());
  ASSERT_TRUE(
      store.Put(Doc("b-copy", article + " Reprinted with permission."))
          .ok());
  ASSERT_TRUE(store.Put(Doc("other",
                            "A completely different page about gardening "
                            "and the joys of compost heaps in spring."))
                  .ok());

  DuplicateDetectionMiner miner;
  ASSERT_TRUE(miner.Run(store).ok());
  ASSERT_EQ(miner.duplicates().size(), 1u);
  EXPECT_EQ(miner.duplicates()[0].first, "b-copy");
  EXPECT_EQ(miner.duplicates()[0].second, "a-orig");
  EXPECT_EQ(store.Get("b-copy")->GetField("duplicate_of"), "a-orig");
  EXPECT_FALSE(store.Get("other")->HasField("duplicate_of"));
}

TEST(DuplicateDetectionTest, DistinctDocsNotFlagged) {
  DataStore store;
  ASSERT_TRUE(store.Put(Doc("a", "The battery lasts all day in testing."))
                  .ok());
  ASSERT_TRUE(store.Put(Doc("b", "The orchestra performed the final "
                                 "movement beautifully last night."))
                  .ok());
  DuplicateDetectionMiner miner;
  ASSERT_TRUE(miner.Run(store).ok());
  EXPECT_TRUE(miner.duplicates().empty());
}

TEST(DuplicateDetectionTest, ThresholdControlsSensitivity) {
  DataStore store;
  std::string base =
      "One two three four five six seven eight nine ten eleven twelve "
      "thirteen fourteen fifteen sixteen seventeen eighteen nineteen.";
  ASSERT_TRUE(store.Put(Doc("a", base)).ok());
  ASSERT_TRUE(store.Put(Doc("b", base + " Extra trailing words here to "
                                        "lower the similarity a bit more "
                                        "and a bit more again."))
                  .ok());
  DuplicateDetectionMiner::Options strict;
  strict.threshold = 0.95;
  DuplicateDetectionMiner strict_miner(strict);
  ASSERT_TRUE(strict_miner.Run(store).ok());
  EXPECT_TRUE(strict_miner.duplicates().empty());

  DuplicateDetectionMiner::Options loose;
  loose.threshold = 0.4;
  // A loose verification threshold needs loose LSH banding too, or the
  // candidate pair never forms (collision prob per band is J^rows).
  loose.bands = 16;
  DuplicateDetectionMiner loose_miner(loose);
  ASSERT_TRUE(loose_miner.Run(store).ok());
  EXPECT_EQ(loose_miner.duplicates().size(), 1u);
}

TEST(DuplicateDetectionTest, DeterministicAcrossRuns) {
  DataStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put(Doc("d" + std::to_string(i),
                              "Shared syndicated body of text that is "
                              "identical across all of these pages."))
                    .ok());
  }
  DuplicateDetectionMiner a, b;
  ASSERT_TRUE(a.Run(store).ok());
  ASSERT_TRUE(b.Run(store).ok());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_EQ(a.duplicates().size(), 9u);  // all map to the first by id
}

// --- AggregateStatsMiner ---------------------------------------------------------

TEST(AggregateStatsTest, CountsDocsTokensVocabulary) {
  DataStore store;
  ASSERT_TRUE(store.Put(Doc("a", "alpha beta gamma.")).ok());
  ASSERT_TRUE(store.Put(Doc("b", "alpha alpha delta.")).ok());
  AggregateStatsMiner miner;
  ASSERT_TRUE(miner.Run(store).ok());
  EXPECT_EQ(miner.stats().documents, 2u);
  EXPECT_EQ(miner.stats().words, 6u);
  EXPECT_EQ(miner.stats().vocabulary, 4u);
  EXPECT_GT(miner.stats().avg_tokens_per_doc, 3.0);
}

TEST(AggregateStatsTest, EmptyStore) {
  DataStore store;
  AggregateStatsMiner miner;
  ASSERT_TRUE(miner.Run(store).ok());
  EXPECT_EQ(miner.stats().documents, 0u);
  EXPECT_NEAR(miner.stats().avg_tokens_per_doc, 0.0, 1e-12);
}

// --- TrendingMiner --------------------------------------------------------------

TEST(TrendingTest, BucketsSentimentByMonth) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  AdHocSentimentMinerPlugin sentiment(&lexicon, &patterns);

  DataStore store;
  ASSERT_TRUE(store.Put(Doc("jan", "Analysts admire Veraxin.", "2004-01"))
                  .ok());
  ASSERT_TRUE(
      store.Put(Doc("feb1", "Lawsuits plague Veraxin.", "2004-02")).ok());
  ASSERT_TRUE(
      store.Put(Doc("feb2", "Regulators condemn Veraxin.", "2004-02"))
          .ok());
  ASSERT_TRUE(store.Put(Doc("undated", "Analysts admire Veraxin.")).ok());
  ASSERT_TRUE(store
                  .ForEachMutable([&sentiment](Entity& e) {
                    ASSERT_TRUE(sentiment.Process(e).ok());
                  })
                  .ok());

  TrendingMiner miner;
  ASSERT_TRUE(miner.Run(store).ok());
  std::vector<TrendingMiner::Bucket> trend = miner.TrendFor("Veraxin");
  ASSERT_EQ(trend.size(), 2u);  // undated doc excluded
  EXPECT_EQ(trend[0].month, "2004-01");
  EXPECT_EQ(trend[0].positive, 1u);
  EXPECT_EQ(trend[0].negative, 0u);
  EXPECT_EQ(trend[1].month, "2004-02");
  EXPECT_EQ(trend[1].negative, 2u);
  EXPECT_EQ(miner.Subjects(), (std::vector<std::string>{"veraxin"}));
}

TEST(TrendingTest, UnknownSubjectEmpty) {
  TrendingMiner miner;
  DataStore store;
  ASSERT_TRUE(miner.Run(store).ok());
  EXPECT_TRUE(miner.TrendFor("nothing").empty());
}

// --- GeoContextMiner --------------------------------------------------------------

TEST(GeoMinerTest, SpotsRegionsAndEmitsConcepts) {
  GeoContextMiner miner;
  Entity e = Doc("geo", "The rig operates in the Gulf of Mexico while "
                        "headquarters remain in Houston.");
  ASSERT_TRUE(miner.Process(e).ok());
  const auto* spans = e.GetAnnotations("geo");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->size(), 2u);
  // One concept token per distinct region.
  EXPECT_EQ(e.concept_tokens().size(), 2u);
  EXPECT_NE(std::find(e.concept_tokens().begin(), e.concept_tokens().end(),
                      "geo/gulf_of_mexico"),
            e.concept_tokens().end());
  EXPECT_NE(std::find(e.concept_tokens().begin(), e.concept_tokens().end(),
                      "geo/texas"),
            e.concept_tokens().end());
}

TEST(GeoMinerTest, NoRegionsNoAnnotations) {
  GeoContextMiner miner;
  Entity e = Doc("plain", "The battery is excellent.");
  ASSERT_TRUE(miner.Process(e).ok());
  EXPECT_EQ(e.GetAnnotations("geo"), nullptr);
  EXPECT_TRUE(e.concept_tokens().empty());
}

TEST(GeoMinerTest, ConceptTokenFormat) {
  EXPECT_EQ(GeoContextMiner::GeoConceptToken("Gulf of Mexico"),
            "geo/gulf_of_mexico");
}

// --- Index range/regex ---------------------------------------------------------------

TEST(IndexRangeTest, NumericFieldsAutoIndexed) {
  InvertedIndex index;
  Entity a = Doc("a", "body", "2004-03");
  a.SetField("score", "7.5");
  index.IndexEntity(a);
  Entity b = Doc("b", "body", "2004-06-15");
  b.SetField("score", "2");
  index.IndexEntity(b);

  EXPECT_EQ(index.Range("score", 5.0, 10.0),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(index.Range("score", 0.0, 10.0),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(index.Range("date", 20040101, 20040401),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(index.Range("date", 20040601, 20040630),
            (std::vector<std::string>{"b"}));
  EXPECT_TRUE(index.Range("missing", 0, 1).empty());
}

TEST(IndexRangeTest, NonNumericFieldsIgnored) {
  InvertedIndex index;
  Entity a = Doc("a", "body");
  a.SetField("url", "http://x");
  index.IndexEntity(a);
  EXPECT_TRUE(index.Range("url", 0, 1e18).empty());
}

TEST(IndexRangeTest, ExplicitFieldValues) {
  InvertedIndex index;
  index.AddFieldValue("d1", "rank", 3);
  index.AddFieldValue("d2", "rank", 9);
  EXPECT_EQ(index.Range("rank", 1, 5), (std::vector<std::string>{"d1"}));
}

TEST(IndexRegexTest, MatchesVocabulary) {
  InvertedIndex index;
  index.IndexEntity(Doc("a", "the battery and the batteries"));
  index.IndexEntity(Doc("b", "a butterfly"));
  EXPECT_EQ(index.MatchRegex("batter(y|ies)"),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(index.MatchRegex("b.*y"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(index.MatchRegex("zzz+").empty());
}

TEST(IndexRegexTest, BadPatternReturnsEmpty) {
  InvertedIndex index;
  index.IndexEntity(Doc("a", "text"));
  EXPECT_TRUE(index.MatchRegex("([unclosed").empty());
}

// --- RuntimeSentimentQueryService ----------------------------------------------------

TEST(RuntimeQueryTest, AgreesWithOfflineService) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster(2);
  BatchIngestor ingestor(
      "t", {{"d1", "Analysts admire Veraxin."},
            {"d2", "Lawsuits plague Veraxin."},
            {"d3", "Veraxin shines in independent tests."},
            {"d4", "Nothing about the subject here."}});
  IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<AdHocSentimentMinerPlugin>(&lexicon, &patterns);
  });
  cluster.MineAndIndexAll();

  SentimentQueryService offline(&cluster);
  RuntimeSentimentQueryService runtime(&cluster, &lexicon, &patterns);
  SentimentQueryResult a = offline.Query("Veraxin");
  SentimentQueryResult b = runtime.Query("Veraxin");
  EXPECT_EQ(a.positive_docs, b.positive_docs);
  EXPECT_EQ(a.negative_docs, b.negative_docs);
  EXPECT_EQ(a.positive_docs, 2u);
  EXPECT_EQ(a.negative_docs, 1u);
}

TEST(RuntimeQueryTest, UnknownSubjectEmpty) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster(1);
  BatchIngestor ingestor("t", {{"d1", "Some text."}});
  IngestAll(ingestor, cluster);
  cluster.MineAndIndexAll();
  RuntimeSentimentQueryService runtime(&cluster, &lexicon, &patterns);
  SentimentQueryResult r = runtime.Query("Ghost Product");
  EXPECT_EQ(r.positive_docs + r.negative_docs, 0u);
}

}  // namespace
}  // namespace wf::platform
