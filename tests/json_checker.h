#ifndef WF_TESTS_JSON_CHECKER_H_
#define WF_TESTS_JSON_CHECKER_H_

#include <cstddef>
#include <string>

// Tiny JSON well-formedness checker shared by the obs and wflint suites.
// Recursive descent over the full JSON grammar. Deliberately independent of
// the exporters under test: they build JSON by string concatenation, so an
// independent parser is the guard against unescaped quotes, trailing
// commas, and the like sneaking into machine-read output. check.sh counts
// on these suites failing when an export stops being parseable.

namespace wf::testing {

class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    if (!checker.ParseValue()) return false;
    checker.SkipWs();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !IsHex(text_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!ConsumeDigits()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!ConsumeDigits()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!ConsumeDigits()) return false;
    }
    return pos_ > start;
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  bool ConsumeDigits() {
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  static bool IsHex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace wf::testing

#endif  // WF_TESTS_JSON_CHECKER_H_
