#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>

#include "common/durable_file.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "platform/cluster.h"
#include "platform/data_store.h"
#include "platform/entity.h"
#include "platform/indexer.h"
#include "platform/ingest.h"
#include "platform/miner_framework.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "platform/vinci.h"

namespace wf::platform {
namespace {

// --- Entity ---------------------------------------------------------------------

Entity MakeEntity(const std::string& id) {
  Entity e(id, "test");
  e.SetBody("The battery is excellent. The flash failed.");
  e.SetField("url", "http://example.com/" + id);
  AnnotationSpan span;
  span.begin = 4;
  span.end = 11;
  span.attrs["subject"] = "battery";
  span.attrs["polarity"] = "+";
  e.AddAnnotation("sentiment", span);
  e.AddConceptToken("sent/+/battery");
  return e;
}

TEST(EntityTest, FieldAccess) {
  Entity e = MakeEntity("e1");
  EXPECT_EQ(e.id(), "e1");
  EXPECT_EQ(e.source(), "test");
  EXPECT_TRUE(e.HasField("url"));
  EXPECT_FALSE(e.HasField("missing"));
  EXPECT_EQ(e.GetField("missing"), "");
}

TEST(EntityTest, SerializeRoundTrip) {
  Entity e = MakeEntity("round-trip");
  auto restored = Entity::Deserialize(e.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, e);
}

TEST(EntityTest, SerializeRoundTripWithSpecialChars) {
  Entity e("weird\tid", "src");
  e.SetBody("line one\nline two\twith tab\\backslash");
  e.SetField("k=v", "a=b\nc");
  auto restored = Entity::Deserialize(e.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, e);
}

TEST(EntityTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Entity::Deserialize("nonsense\tstuff\n").ok());
  EXPECT_FALSE(Entity::Deserialize("").ok());  // no id
}

TEST(EntityTest, AnnotationsByLayer) {
  Entity e = MakeEntity("e");
  ASSERT_NE(e.GetAnnotations("sentiment"), nullptr);
  EXPECT_EQ(e.GetAnnotations("sentiment")->size(), 1u);
  EXPECT_EQ(e.GetAnnotations("nope"), nullptr);
}

// --- DataStore -------------------------------------------------------------------

TEST(DataStoreTest, PutGetDelete) {
  DataStore store;
  ASSERT_TRUE(store.Put(MakeEntity("a")).ok());
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_EQ(store.size(), 1u);

  auto got = store.Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id(), "a");

  EXPECT_TRUE(store.Delete("a").ok());
  EXPECT_FALSE(store.Contains("a"));
  EXPECT_EQ(store.Delete("a").code(), common::StatusCode::kNotFound);
}

TEST(DataStoreTest, PutRejectsDuplicate) {
  DataStore store;
  ASSERT_TRUE(store.Put(MakeEntity("a")).ok());
  EXPECT_EQ(store.Put(MakeEntity("a")).code(),
            common::StatusCode::kAlreadyExists);
  ASSERT_TRUE(store.Upsert(MakeEntity("a")).ok());  // upsert allows replacement
  EXPECT_EQ(store.size(), 1u);
}

TEST(DataStoreTest, UpdateInPlace) {
  DataStore store;
  ASSERT_TRUE(store.Put(MakeEntity("a")).ok());
  ASSERT_TRUE(store
                  .Update("a",
                          [](Entity& e) { e.SetField("seen", "yes"); })
                  .ok());
  EXPECT_EQ(store.Get("a")->GetField("seen"), "yes");
  EXPECT_EQ(store.Update("zz", [](Entity&) {}).code(),
            common::StatusCode::kNotFound);
}

TEST(DataStoreTest, ForEachVisitsAll) {
  DataStore store;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put(MakeEntity("e" + std::to_string(i))).ok());
  }
  size_t visits = 0;
  store.ForEach([&visits](const Entity&) { ++visits; });
  EXPECT_EQ(visits, 5u);
  EXPECT_EQ(store.Ids().size(), 5u);
}

TEST(DataStoreTest, SaveLoadRoundTrip) {
  std::string path = "/tmp/wf_datastore_test.wfs";
  DataStore store;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(store.Put(MakeEntity("e" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(store.Save(path).ok());

  DataStore restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), 7u);
  auto e3 = restored.Get("e3");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(*e3, MakeEntity("e3"));
  std::filesystem::remove(path);
}

TEST(DataStoreTest, FailedSavePreservesThePreviousSnapshot) {
  // Save goes through <path>.tmp + atomic rename; a save that cannot write
  // must leave the previous on-disk snapshot fully loadable (the old
  // in-place write truncated it on open).
  std::string path = "/tmp/wf_datastore_atomic_test.wfs";
  std::string tmp_path = path + ".tmp";
  std::filesystem::remove_all(path);
  std::filesystem::remove_all(tmp_path);

  DataStore store;
  ASSERT_TRUE(store.Put(MakeEntity("keep")).ok());
  ASSERT_TRUE(store.Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(tmp_path));  // no residue on success

  // Block the temp file with a directory of the same name: the new save
  // fails before it can touch `path`.
  ASSERT_TRUE(std::filesystem::create_directory(tmp_path));
  ASSERT_TRUE(store.Put(MakeEntity("extra")).ok());
  EXPECT_EQ(store.Save(path).code(), common::StatusCode::kIOError);

  DataStore survivor;
  ASSERT_TRUE(survivor.Load(path).ok());
  EXPECT_EQ(survivor.size(), 1u);
  EXPECT_TRUE(survivor.Contains("keep"));

  // Unblocked, the same save lands both entities and cleans up its temp.
  std::filesystem::remove_all(tmp_path);
  ASSERT_TRUE(store.Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(tmp_path));
  DataStore reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), 2u);
  std::filesystem::remove(path);
}

TEST(DataStoreTest, LoadMissingFileFails) {
  DataStore store;
  EXPECT_EQ(store.Load("/tmp/definitely_not_here.wfs").code(),
            common::StatusCode::kIOError);
}

TEST(DataStoreTest, LoadRejectsCorruptSnapshot) {
  // Snapshots carry a checksummed envelope: one flipped byte anywhere must
  // surface as Corruption, never load as silently wrong data.
  std::string path = "/tmp/wf_datastore_corrupt_test.wfs";
  DataStore store;
  ASSERT_TRUE(store.Put(MakeEntity("a")).ok());
  ASSERT_TRUE(store.Save(path).ok());

  auto content = common::ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bad = content.value();
  bad[bad.size() / 2] ^= 0x01;
  // Raw stream on purpose: the test simulates the corruption itself.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bad;
  }
  DataStore poisoned;
  EXPECT_EQ(poisoned.Load(path).code(), common::StatusCode::kCorruption);

  // A truncated copy is rejected the same way.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content.value().substr(0, content.value().size() - 1);
  }
  EXPECT_EQ(poisoned.Load(path).code(), common::StatusCode::kCorruption);
  std::filesystem::remove(path);
}

// --- InvertedIndex -----------------------------------------------------------------

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    Entity a("a", "t");
    a.SetBody("the battery is excellent and the flash is weak");
    index_.IndexEntity(a);
    Entity b("b", "t");
    b.SetBody("picture quality matters more than the battery");
    index_.IndexEntity(b);
    Entity c("c", "t");
    c.SetBody("nothing relevant in this one");
    c.AddConceptToken("sent/+/battery");
    index_.IndexEntity(c);
  }
  InvertedIndex index_;
};

TEST_F(IndexTest, TermQuery) {
  EXPECT_EQ(index_.Term("battery"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(index_.Term("zzz").empty());
}

TEST_F(IndexTest, CaseInsensitiveTerms) {
  EXPECT_EQ(index_.Term("BATTERY"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(IndexTest, BooleanAnd) {
  EXPECT_EQ(index_.And({"battery", "flash"}),
            (std::vector<std::string>{"a"}));
  EXPECT_TRUE(index_.And({"battery", "zzz"}).empty());
  EXPECT_TRUE(index_.And({}).empty());
}

TEST_F(IndexTest, BooleanOr) {
  EXPECT_EQ(index_.Or({"flash", "picture"}),
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(IndexTest, BooleanNot) {
  EXPECT_EQ(index_.Not("battery", "flash"),
            (std::vector<std::string>{"b"}));
}

TEST_F(IndexTest, PhraseQuery) {
  EXPECT_EQ(index_.Phrase({"picture", "quality"}),
            (std::vector<std::string>{"b"}));
  // Words present but not adjacent.
  EXPECT_TRUE(index_.Phrase({"battery", "flash"}).empty());
}

TEST_F(IndexTest, PrefixQuery) {
  EXPECT_EQ(index_.Prefix("batt"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(IndexTest, ConceptTokensIndexed) {
  EXPECT_EQ(index_.Term("sent/+/battery"),
            (std::vector<std::string>{"c"}));
  index_.AddConceptToken("a", "sent/+/battery");
  EXPECT_EQ(index_.Term("sent/+/battery"),
            (std::vector<std::string>{"a", "c"}));
}

TEST_F(IndexTest, TermFrequency) {
  EXPECT_EQ(index_.TermFrequency("the", "a"), 2u);
  EXPECT_EQ(index_.TermFrequency("battery", "c"), 0u);
  EXPECT_EQ(index_.TermFrequency("sent/+/battery", "c"), 1u);
}

TEST_F(IndexTest, ReindexReplacesPostings) {
  Entity a2("a", "t");
  a2.SetBody("completely different words now");
  index_.IndexEntity(a2);
  EXPECT_EQ(index_.Term("battery"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(index_.Term("completely"), (std::vector<std::string>{"a"}));
}

TEST_F(IndexTest, Stats) {
  EXPECT_EQ(index_.document_count(), 3u);
  EXPECT_GT(index_.vocabulary_size(), 10u);
  EXPECT_FALSE(index_.VocabularyWithPrefix("sent/").empty());
}

TEST_F(IndexTest, SaveLoadRoundTrip) {
  std::string path = "/tmp/wf_index_roundtrip_test.wfi";
  ASSERT_TRUE(index_.Save(path).ok());
  InvertedIndex restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.document_count(), index_.document_count());
  EXPECT_EQ(restored.vocabulary_size(), index_.vocabulary_size());
  EXPECT_EQ(restored.Term("battery"), index_.Term("battery"));
  EXPECT_EQ(restored.Phrase({"picture", "quality"}),
            index_.Phrase({"picture", "quality"}));
  EXPECT_EQ(restored.Term("sent/+/battery"), index_.Term("sent/+/battery"));
  std::filesystem::remove(path);
}

TEST_F(IndexTest, FailedSavePreservesThePreviousSnapshot) {
  // Index saves go through the same temp-file + atomic-rename path as the
  // data store (the old in-place write truncated the previous snapshot the
  // moment the stream opened).
  std::string path = "/tmp/wf_index_atomic_test.wfi";
  std::string tmp_path = path + ".tmp";
  std::filesystem::remove_all(path);
  std::filesystem::remove_all(tmp_path);

  ASSERT_TRUE(index_.Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(tmp_path));  // no residue on success

  // Block the temp file with a directory of the same name: the next save
  // must fail without touching `path`.
  ASSERT_TRUE(std::filesystem::create_directory(tmp_path));
  Entity extra("extra", "t");
  extra.SetBody("battery again");
  index_.IndexEntity(extra);
  EXPECT_EQ(index_.Save(path).code(), common::StatusCode::kIOError);

  InvertedIndex survivor;
  ASSERT_TRUE(survivor.Load(path).ok());
  EXPECT_EQ(survivor.document_count(), 3u);  // the pre-failure snapshot

  std::filesystem::remove_all(tmp_path);
  ASSERT_TRUE(index_.Save(path).ok());
  InvertedIndex reloaded;
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.document_count(), 4u);
  std::filesystem::remove(path);
}

TEST_F(IndexTest, LoadRejectsCorruptSnapshot) {
  std::string path = "/tmp/wf_index_corrupt_test.wfi";
  ASSERT_TRUE(index_.Save(path).ok());
  auto content = common::ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bad = content.value();
  bad[bad.size() / 2] ^= 0x01;
  // Raw stream on purpose: the test simulates the corruption itself.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bad;
  }
  InvertedIndex poisoned;
  EXPECT_EQ(poisoned.Load(path).code(), common::StatusCode::kCorruption);
  EXPECT_EQ(poisoned.Load("/tmp/definitely_not_here.wfi").code(),
            common::StatusCode::kIOError);
  std::filesystem::remove(path);
}

// --- VinciBus ----------------------------------------------------------------------

TEST(VinciTest, RegisterAndCall) {
  VinciBus bus;
  ASSERT_TRUE(bus.RegisterService("upper", [](const std::string& req) {
                   return common::ToUpper(req);
                 }).ok());
  auto response = bus.Call("upper", "abc");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "ABC");
  EXPECT_EQ(bus.CallCount("upper"), 1u);
}

TEST(VinciTest, UnknownServiceFails) {
  VinciBus bus;
  EXPECT_EQ(bus.Call("ghost", "x").status().code(),
            common::StatusCode::kNotFound);
}

TEST(VinciTest, DuplicateRegistrationFails) {
  VinciBus bus;
  ASSERT_TRUE(bus.RegisterService("s", [](const std::string&) {
                   return "";
                 }).ok());
  EXPECT_EQ(bus.RegisterService("s", [](const std::string&) {
                 return "";
               }).code(),
            common::StatusCode::kAlreadyExists);
}

TEST(VinciTest, UnregisterRemoves) {
  VinciBus bus;
  ASSERT_TRUE(bus.RegisterService("s", [](const std::string&) {
                   return "";
                 }).ok());
  ASSERT_TRUE(bus.UnregisterService("s").ok());
  EXPECT_FALSE(bus.Call("s", "").ok());
  EXPECT_EQ(bus.UnregisterService("s").code(),
            common::StatusCode::kNotFound);
}

TEST(VinciTest, CallAllScattersByPrefix) {
  VinciBus bus;
  for (int i = 0; i < 3; ++i) {
    std::string name = "node/" + std::to_string(i) + "/echo";
    ASSERT_TRUE(bus.RegisterService(name, [i](const std::string&) {
                     return std::to_string(i);
                   }).ok());
  }
  ASSERT_TRUE(bus.RegisterService("app/other", [](const std::string&) {
                   return "x";
                 }).ok());
  auto responses = bus.CallAll("node/", "req");
  ASSERT_EQ(responses.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(responses[i].first, "node/" + std::to_string(i) + "/echo");
    ASSERT_TRUE(responses[i].second.ok());
    EXPECT_EQ(*responses[i].second, std::to_string(i));
  }
}

TEST(VinciTest, NotFoundResolvesLocallyWithoutSimulatedLatency) {
  VinciBus bus;
  bus.SetSimulatedLatency(50000);  // 50 ms per delivered call
  auto start = std::chrono::steady_clock::now();
  auto result = bus.Call("node/9/missing", "req");
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kNotFound);
  // A registry miss is a local lookup: no simulated round trip is charged.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST(VinciTest, WireFormatRoundTrip) {
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"subject", "NR70"},
      {"sentence", "line one\nline two"},
      {"subject", "second value"},
  };
  std::string encoded = EncodeMessage(pairs);
  EXPECT_EQ(DecodeMessage(encoded), pairs);
  EXPECT_EQ(GetMessageField(encoded, "subject"), "NR70");
  EXPECT_EQ(GetMessageFields(encoded, "subject").size(), 2u);
  EXPECT_EQ(GetMessageField(encoded, "missing"), "");
}

TEST(VinciTest, WireFormatEscapesHostileKeysAndValues) {
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"key=with=eq", "value=with=eq"},  // '=' in a key used to split wrong
      {"key\nnewline", "v"},
      {"back\\slash", "trailing\\"},
      {"literal\\n", "literal\\n"},  // backslash-n, not a newline
      {"", ""},                      // even empty keys round-trip
  };
  std::string encoded = EncodeMessage(pairs);
  EXPECT_EQ(DecodeMessage(encoded), pairs);
  EXPECT_EQ(GetMessageField(encoded, "key=with=eq"), "value=with=eq");
}

TEST(VinciTest, DecodeToleratesMalformedInput) {
  // Lines without an unescaped '=' are skipped, not misparsed.
  EXPECT_TRUE(DecodeMessage("no separator line\n").empty());
  // A dangling trailing backslash survives instead of being dropped.
  auto decoded = DecodeMessage("k=v\\\n");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].second, "v\\");
  // An escaped '=' in a key does not split the line there.
  auto escaped = DecodeMessage("a\\=b=c\n");
  ASSERT_EQ(escaped.size(), 1u);
  EXPECT_EQ(escaped[0].first, "a=b");
  EXPECT_EQ(escaped[0].second, "c");
}

// --- Miner framework ----------------------------------------------------------------

TEST(MinerFrameworkTest, PipelineRunsInOrderAndCounts) {
  MinerPipeline pipeline;
  pipeline.AddMiner(std::make_unique<SentenceBoundaryMiner>());
  pipeline.AddMiner(std::make_unique<TokenStatsMiner>());

  Entity e("e", "t");
  e.SetBody("First sentence. Second sentence here.");
  ASSERT_TRUE(pipeline.ProcessEntity(e).ok());

  ASSERT_NE(e.GetAnnotations("sentences"), nullptr);
  EXPECT_EQ(e.GetAnnotations("sentences")->size(), 2u);
  EXPECT_EQ(e.GetField("word_count"), "5");

  auto stats = pipeline.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].entities, 1u);
  EXPECT_EQ(stats[0].failures, 0u);
}

TEST(MinerFrameworkTest, SentimentPluginAnnotatesAndEmitsConcepts) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  AdHocSentimentMinerPlugin plugin(&lexicon, &patterns);
  Entity e("e", "t");
  e.SetBody("Kodak impresses everyone who tried it.");
  ASSERT_TRUE(plugin.Process(e).ok());
  ASSERT_NE(e.GetAnnotations("sentiment"), nullptr);
  ASSERT_EQ(e.concept_tokens().size(), 1u);
  EXPECT_EQ(e.concept_tokens()[0], "sent/+/kodak");
}

TEST(MinerFrameworkTest, ConceptTokenFormat) {
  EXPECT_EQ(SentimentConceptToken("Sunrise Oil",
                                  lexicon::Polarity::kNegative),
            "sent/-/sunrise_oil");
  EXPECT_EQ(SentimentConceptToken("NR70", lexicon::Polarity::kPositive),
            "sent/+/nr70");
}

// --- Cluster + ingest + query service -------------------------------------------------

TEST(ClusterTest, RoutingIsStableAndBalanced) {
  Cluster cluster(4);
  std::map<size_t, int> counts;
  for (int i = 0; i < 1000; ++i) {
    size_t shard = cluster.Route("doc-" + std::to_string(i));
    EXPECT_EQ(shard, cluster.Route("doc-" + std::to_string(i)));
    ++counts[shard];
  }
  for (const auto& [shard, n] : counts) {
    EXPECT_GT(n, 150);  // roughly balanced
  }
}

TEST(ClusterTest, IngestStoresOnOwningNode) {
  Cluster cluster(3);
  Entity e = MakeEntity("routed");
  size_t shard = cluster.Route("routed");
  ASSERT_TRUE(cluster.Ingest(e).ok());
  EXPECT_TRUE(cluster.node(shard).store().Contains("routed"));
  EXPECT_EQ(cluster.TotalEntities(), 1u);
  // Duplicate rejected.
  EXPECT_FALSE(cluster.Ingest(e).ok());
}

TEST(ClusterTest, SearchScattersOverBus) {
  Cluster cluster(2);
  for (int i = 0; i < 10; ++i) {
    Entity e("doc-" + std::to_string(i), "t");
    e.SetBody(i % 2 == 0 ? "contains magicword here"
                         : "nothing to see");
    ASSERT_TRUE(cluster.Ingest(std::move(e)).ok());
  }
  cluster.MineAndIndexAll();
  SearchResult result = cluster.Search("magicword");
  EXPECT_EQ(result.docs.size(), 5u);
  EXPECT_EQ(result.nodes_total, 2u);
  EXPECT_EQ(result.nodes_responded, 2u);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(cluster.SearchPhrase({"contains", "magicword"}).docs.size(), 5u);
}

TEST(IngestTest, BatchIngestorDrains) {
  Cluster cluster(2);
  BatchIngestor ingestor("src", {{"a", "body a"}, {"b", "body b"}});
  EXPECT_EQ(IngestAll(ingestor, cluster), 2u);
  EXPECT_EQ(cluster.TotalEntities(), 2u);
}

TEST(IngestTest, CrawlerFollowsLinksAndDedups) {
  std::map<std::string, CrawlerSimulator::Page> site;
  site["u0"] = {"page zero", {"u1", "u2"}};
  site["u1"] = {"page one", {"u0", "u2"}};
  site["u2"] = {"page two", {"u3"}};
  site["u3"] = {"page three", {}};
  CrawlerSimulator crawler(
      {"u0"}, [&site](const std::string& url)
                  -> std::optional<CrawlerSimulator::Page> {
        auto it = site.find(url);
        if (it == site.end()) return std::nullopt;
        return it->second;
      });
  std::vector<std::string> crawled;
  while (auto e = crawler.Next()) crawled.push_back(e->id());
  EXPECT_EQ(crawled,
            (std::vector<std::string>{"u0", "u1", "u2", "u3"}));
  EXPECT_EQ(crawler.fetched(), 4u);
}

TEST(IngestTest, CrawlerRespectsPageLimit) {
  std::map<std::string, CrawlerSimulator::Page> site;
  for (int i = 0; i < 10; ++i) {
    site["p" + std::to_string(i)] = {
        "body", {"p" + std::to_string((i + 1) % 10)}};
  }
  CrawlerSimulator crawler(
      {"p0"},
      [&site](const std::string& url)
          -> std::optional<CrawlerSimulator::Page> {
        return site.at(url);
      },
      /*max_pages=*/3);
  size_t n = 0;
  while (crawler.Next().has_value()) ++n;
  EXPECT_EQ(n, 3u);
}

TEST(QueryServiceTest, EndToEndSentimentQuery) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster(2);
  BatchIngestor ingestor(
      "t", {{"d1", "Kodak impresses everyone who tried it."},
            {"d2", "Lawsuits plague Kodak."},
            {"d3", "Kodak announced a meeting."}});
  IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<AdHocSentimentMinerPlugin>(&lexicon, &patterns);
  });
  cluster.MineAndIndexAll();

  SentimentQueryService service(&cluster);
  ASSERT_TRUE(service.RegisterService().ok());

  SentimentQueryResult result = service.Query("Kodak");
  EXPECT_EQ(result.positive_docs, 1u);
  EXPECT_EQ(result.negative_docs, 1u);
  ASSERT_EQ(result.hits.size(), 2u);

  // The service is also reachable over the bus.
  auto response = cluster.bus().Call(
      "app/sentiment_query", EncodeMessage({{"subject", "Kodak"}}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(GetMessageField(*response, "positive_docs"), "1");

  // Discovered subjects include kodak.
  std::vector<std::string> subjects = service.KnownSubjects();
  EXPECT_NE(std::find(subjects.begin(), subjects.end(), "kodak"),
            subjects.end());
}

}  // namespace
}  // namespace wf::platform
