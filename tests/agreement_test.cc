// Parameterized agreement sweep: for every subject in every domain, the
// analyzer must recover the polarity of generated class-A (extractable)
// sentences at high rate, in both polarities — the contract between the
// corpus generator and the miner that every headline number rests on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "corpus/domain.h"
#include "corpus/sentence_templates.h"
#include "platform/data_store.h"
#include "platform/indexer.h"
#include "tests/test_util.h"

namespace wf {
namespace {

using corpus::DomainVocab;
using corpus::GenSentence;
using corpus::Register;
using corpus::SentenceFactory;
using lexicon::Polarity;

struct SweepCase {
  const DomainVocab* domain;
  Register reg;
  const char* label;
};

class AgreementSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static wf::testing::Pipeline& Shared() {
    static auto* kPipeline = new wf::testing::Pipeline();
    return *kPipeline;
  }
};

TEST_P(AgreementSweep, ExtractableSentencesRecovered) {
  const SweepCase& param = GetParam();
  SentenceFactory factory(param.domain, &corpus::SharedWordPools(),
                          param.reg);
  common::Rng rng(2718);

  size_t total = 0, correct = 0;
  auto sweep_subject = [&](const std::string& subject) {
    for (Polarity target : {Polarity::kPositive, Polarity::kNegative}) {
      for (int trial = 0; trial < 6; ++trial) {
        GenSentence s = factory.PolarExtractable(rng, subject, target);
        Polarity got = Shared().Analyze(s.text, subject);
        ++total;
        if (got == target) ++correct;
      }
    }
  };
  for (const std::string& feature : param.domain->features) {
    sweep_subject(feature);
  }
  for (const corpus::Product& p : param.domain->products) {
    sweep_subject(p.name);
  }
  double rate = static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_GT(rate, 0.9) << param.label << ": " << correct << "/" << total;
}

TEST_P(AgreementSweep, NeutralSentencesStayNeutralMostly) {
  const SweepCase& param = GetParam();
  SentenceFactory factory(param.domain, &corpus::SharedWordPools(),
                          param.reg);
  common::Rng rng(3141);

  size_t total = 0, fired = 0;
  for (const std::string& feature : param.domain->features) {
    for (int trial = 0; trial < 8; ++trial) {
      GenSentence s =
          factory.Neutral(rng, feature, /*with_distractor=*/trial % 2 == 0);
      Polarity got = Shared().Analyze(s.text, feature);
      ++total;
      if (got != Polarity::kNeutral) ++fired;
    }
  }
  // The miner may fire on a small fraction of neutral mentions (the paper's
  // precision is not 100% either), but must stay well under 10%.
  EXPECT_LT(static_cast<double>(fired) / static_cast<double>(total), 0.1)
      << param.label << ": " << fired << "/" << total;
}

INSTANTIATE_TEST_SUITE_P(
    Domains, AgreementSweep,
    ::testing::Values(
        SweepCase{&corpus::CameraDomain(), Register::kReview, "camera"},
        SweepCase{&corpus::MusicDomain(), Register::kReview, "music"},
        SweepCase{&corpus::PetroleumDomain(), Register::kWeb, "petroleum"},
        SweepCase{&corpus::PharmaDomain(), Register::kWeb, "pharma"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

// --- Concurrency smoke tests -------------------------------------------------------

TEST(ConcurrencyTest, DataStoreParallelReadersAndWriters) {
  platform::DataStore store;
  std::atomic<bool> stop{false};
  std::atomic<size_t> errors{0};

  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      platform::Entity e("w-" + std::to_string(i), "t");
      e.SetBody("body " + std::to_string(i));
      if (!store.Upsert(std::move(e)).ok()) ++errors;
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop) {
        size_t n = store.size();
        auto ids = store.Ids();
        if (ids.size() < n && ids.size() + 50 < n) ++errors;
        store.ForEach([](const platform::Entity&) {});
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(errors, 0u);
}

TEST(ConcurrencyTest, IndexParallelQueriesDuringIndexing) {
  platform::InvertedIndex index;
  std::atomic<bool> stop{false};
  std::thread indexer([&] {
    for (int i = 0; i < 300; ++i) {
      platform::Entity e("d-" + std::to_string(i), "t");
      e.SetBody("the battery works and the zoom shines number " +
                std::to_string(i));
      index.IndexEntity(e);
    }
    stop = true;
  });
  std::vector<std::thread> queriers;
  for (int q = 0; q < 3; ++q) {
    queriers.emplace_back([&] {
      while (!stop) {
        auto a = index.Term("battery");
        auto b = index.Phrase({"zoom", "shines"});
        auto c = index.And({"battery", "zoom"});
        (void)a;
        (void)b;
        (void)c;
      }
    });
  }
  indexer.join();
  for (auto& t : queriers) t.join();
  EXPECT_EQ(index.document_count(), 300u);
  EXPECT_EQ(index.Term("battery").size(), 300u);
}

}  // namespace
}  // namespace wf
