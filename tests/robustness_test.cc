// Failure-injection and hostile-input tests: the pipeline must degrade
// gracefully (empty results, error Status) rather than crash or corrupt
// state, whatever the input.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "core/miner.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/data_store.h"
#include "platform/indexer.h"
#include "platform/vinci.h"

namespace wf {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : lexicon_(lexicon::SentimentLexicon::Embedded()),
        patterns_(lexicon::PatternDatabase::Embedded()) {}

  lexicon::SentimentLexicon lexicon_;
  lexicon::PatternDatabase patterns_;
};

// --- Hostile miner inputs -------------------------------------------------------

TEST_F(RobustnessTest, MinerSurvivesEmptyAndDegenerateBodies) {
  core::SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "battery", {}});
  core::SentimentStore store;
  for (const char* body :
       {"", ".", "...", "!!!!", "battery", "battery.", ". . . .",
        "the the the the", "battery battery battery battery battery"}) {
    miner.ProcessDocument("d", body, &store);
  }
  SUCCEED();
}

TEST_F(RobustnessTest, MinerSurvivesRandomBytes) {
  core::SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "battery", {}});
  core::SentimentStore store;
  common::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    std::string body;
    size_t len = static_cast<size_t>(rng.Uniform(0, 400));
    for (size_t i = 0; i < len; ++i) {
      // Printable ASCII plus newlines/tabs — the tokenizer's contract.
      int c = static_cast<int>(rng.Uniform(0, 97));
      body += c < 95 ? static_cast<char>(32 + c) : (c == 95 ? '\n' : '\t');
    }
    miner.ProcessDocument("fuzz", body, &store);
  }
  SUCCEED();
}

TEST_F(RobustnessTest, AdHocMinerSurvivesPathologicalCapitalization) {
  core::AdHocSentimentMiner miner(&lexicon_, &patterns_);
  core::SentimentStore store;
  std::string all_caps;
  for (int i = 0; i < 200; ++i) all_caps += "AAA BBB CCC DDD ";
  miner.ProcessDocument("caps", all_caps + ".", &store);
  std::string long_run;
  for (int i = 0; i < 500; ++i) long_run += "Word ";
  miner.ProcessDocument("run", long_run + "is excellent.", &store);
  SUCCEED();
}

TEST_F(RobustnessTest, VeryLongSentenceDoesNotBlowUp) {
  core::SentimentMiner miner(&lexicon_, &patterns_);
  miner.AddSubject({1, "battery", {}});
  core::SentimentStore store;
  std::string body = "The battery";
  for (int i = 0; i < 2000; ++i) body += " and the zoom";
  body += " is excellent.";
  miner.ProcessDocument("long", body, &store);
  SUCCEED();
}

// --- Resource file failure modes ----------------------------------------------------

TEST_F(RobustnessTest, LexiconLoadFileMissing) {
  lexicon::SentimentLexicon lex;
  EXPECT_EQ(lex.LoadFile("/tmp/no_such_lexicon_file.txt").code(),
            common::StatusCode::kIOError);
}

TEST_F(RobustnessTest, PatternLoadReportsLineNumbers) {
  lexicon::PatternDatabase db;
  common::Status s = db.LoadText("be CP SP\nbroken line here now\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST_F(RobustnessTest, PartialPatternLoadLeavesValidPrefixOnly) {
  lexicon::PatternDatabase db;
  (void)db.LoadText("glorp + SP\nbad-line\n");
  // The first line was added before the failure; the database stays usable.
  EXPECT_NE(db.Lookup("glorp"), nullptr);
}

// --- Store / index corruption --------------------------------------------------------

TEST_F(RobustnessTest, DataStoreLoadCorruptFile) {
  std::string path = "/tmp/wf_corrupt_store.wfs";
  {
    std::ofstream out(path);
    out << "999999\nid\tshort\n";  // record claims more bytes than exist
  }
  platform::DataStore store;
  EXPECT_EQ(store.Load(path).code(), common::StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, DataStoreLoadGarbageSizeLine) {
  std::string path = "/tmp/wf_garbage_store.wfs";
  {
    std::ofstream out(path);
    out << "not-a-number\n";
  }
  platform::DataStore store;
  EXPECT_EQ(store.Load(path).code(), common::StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, IndexSaveLoadRoundTrip) {
  platform::InvertedIndex index;
  platform::Entity a("doc a", "t");  // id with a space (escaping path)
  a.SetBody("the battery is excellent");
  a.SetField("date", "2004-05");
  a.AddConceptToken("sent/+/battery");
  index.IndexEntity(a);
  platform::Entity b("doc-b", "t");
  b.SetBody("picture quality wins");
  index.IndexEntity(b);

  std::string path = "/tmp/wf_index_snapshot.wfidx";
  ASSERT_TRUE(index.Save(path).ok());

  platform::InvertedIndex restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.document_count(), 2u);
  EXPECT_EQ(restored.Term("battery"), (std::vector<std::string>{"doc a"}));
  EXPECT_EQ(restored.Phrase({"picture", "quality"}),
            (std::vector<std::string>{"doc-b"}));
  EXPECT_EQ(restored.Term("sent/+/battery"),
            (std::vector<std::string>{"doc a"}));
  EXPECT_EQ(restored.Range("date", 20040101, 20041231),
            (std::vector<std::string>{"doc a"}));
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, IndexLoadRejectsBadHeader) {
  std::string path = "/tmp/wf_bad_index.wfidx";
  {
    std::ofstream out(path);
    out << "something else\n";
  }
  platform::InvertedIndex index;
  EXPECT_EQ(index.Load(path).code(), common::StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST_F(RobustnessTest, IndexLoadRejectsDanglingPosting) {
  std::string path = "/tmp/wf_dangling_index.wfidx";
  {
    std::ofstream out(path);
    out << "wfidx 1\ndoc 0 a\nterm word 5:1\n";  // doc 5 does not exist
  }
  platform::InvertedIndex index;
  EXPECT_EQ(index.Load(path).code(), common::StatusCode::kCorruption);
  std::filesystem::remove(path);
}

// --- Service failure ------------------------------------------------------------------

TEST_F(RobustnessTest, BusSurvivesServiceChurn) {
  platform::VinciBus bus;
  for (int round = 0; round < 20; ++round) {
    std::string name = "svc/" + std::to_string(round % 3);
    (void)bus.RegisterService(name, [](const std::string& r) { return r; });
    auto response = bus.Call(name, "ping");
    EXPECT_TRUE(response.ok());
    ASSERT_TRUE(bus.UnregisterService(name).ok());
    EXPECT_FALSE(bus.Call(name, "ping").ok());
  }
}

}  // namespace
}  // namespace wf
