// Durability layer tests: the storage fault injector, the durable-file
// primitives, the checksummed snapshot envelope, the write-ahead log (with
// a truncate-at-every-byte replay fuzz), and node-level checkpoint/recover.
// The cluster-wide kill → degrade → recover → heal story lives in
// chaos_test.cc.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "gtest/gtest.h"
#include "platform/cluster.h"
#include "platform/entity.h"
#include "platform/wal.h"

namespace wf {
namespace {

using ::wf::common::DurableFile;
using ::wf::common::StorageFaultInjector;
using ::wf::platform::Cluster;
using ::wf::platform::ClusterNode;
using ::wf::platform::Entity;
using ::wf::platform::WriteAheadLog;

// A fresh directory under /tmp, removed on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_("/tmp/wf_durability_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  auto content = common::ReadFileToString(path);
  return content.ok() ? content.value() : std::string();
}

Entity MakeEntity(const std::string& id) {
  Entity e(id, "test");
  e.SetBody("body of " + id + " with battery words");
  return e;
}

// --- StorageFaultInjector ---------------------------------------------------

TEST(StorageFaultInjectorTest, VerdictStreamIsAPureFunctionOfSeedAndPath) {
  StorageFaultInjector::Policy policy;
  policy.fail_probability = 0.3;
  policy.torn_probability = 0.3;
  policy.bitflip_probability = 0.3;

  auto run = [&policy](uint64_t seed) {
    StorageFaultInjector injector(seed);
    injector.SetPolicy("/data/", policy);
    std::vector<int> verdicts;
    for (int i = 0; i < 64; ++i) {
      verdicts.push_back(static_cast<int>(
          injector.DecideAppend("/data/node-0.wal", 100).action));
    }
    return verdicts;
  };
  EXPECT_EQ(run(7), run(7));  // same seed: byte-identical chaos
  EXPECT_NE(run(7), run(8));  // different seed: different weather
}

TEST(StorageFaultInjectorTest, VerdictsPerPathIgnoreInterleaving) {
  // The k-th append to a path gets the same verdict no matter how appends
  // to other paths interleave — this is what makes threaded chaos replay.
  StorageFaultInjector::Policy policy;
  policy.fail_probability = 0.5;

  StorageFaultInjector alone(99);
  alone.SetPolicy("/d/", policy);
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    expected.push_back(
        static_cast<int>(alone.DecideAppend("/d/a.wal", 10).action));
  }

  StorageFaultInjector interleaved(99);
  interleaved.SetPolicy("/d/", policy);
  std::vector<int> got;
  for (int i = 0; i < 32; ++i) {
    (void)interleaved.DecideAppend("/d/b.wal", 10);  // noise on another path
    got.push_back(
        static_cast<int>(interleaved.DecideAppend("/d/a.wal", 10).action));
    (void)interleaved.DecideAppend("/d/c.wal", 10);
  }
  EXPECT_EQ(got, expected);
}

TEST(StorageFaultInjectorTest, ArmedCrashFiresOnceThenPathStaysDown) {
  StorageFaultInjector injector(1);
  injector.ArmCrash("/d/node-1", /*after_appends=*/2, /*torn_bytes=*/3);

  using Action = StorageFaultInjector::Decision::Action;
  EXPECT_EQ(injector.DecideAppend("/d/node-1.wal", 10).action,
            Action::kWrite);
  EXPECT_EQ(injector.DecideAppend("/d/node-1.wal", 10).action,
            Action::kWrite);
  StorageFaultInjector::Decision crash =
      injector.DecideAppend("/d/node-1.wal", 10);
  EXPECT_EQ(crash.action, Action::kTorn);
  EXPECT_EQ(crash.torn_bytes, 3u);
  // Power is off: everything on the prefix fails, other paths are fine.
  EXPECT_EQ(injector.DecideAppend("/d/node-1.wal", 10).action,
            Action::kFail);
  EXPECT_TRUE(injector.IsCrashed("/d/node-1.store"));
  EXPECT_FALSE(injector.CheckWritable("/d/node-1.store").ok());
  EXPECT_EQ(injector.DecideAppend("/d/node-2.wal", 10).action,
            Action::kWrite);
  // Power restored.
  injector.ClearCrashes();
  EXPECT_FALSE(injector.IsCrashed("/d/node-1.store"));
  EXPECT_EQ(injector.DecideAppend("/d/node-1.wal", 10).action,
            Action::kWrite);
}

// --- DurableFile ------------------------------------------------------------

TEST(DurableFileTest, FailedAppendLeavesNoBytes) {
  ScopedTempDir dir("fail");
  StorageFaultInjector injector(1);
  StorageFaultInjector::Policy policy;
  policy.fail_probability = 1.0;
  injector.SetPolicy(dir.path(), policy);

  DurableFile file;
  ASSERT_TRUE(file.Open(dir.File("a.log"), &injector).ok());
  EXPECT_EQ(file.Append("hello").code(), common::StatusCode::kIOError);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_EQ(ReadAll(dir.File("a.log")), "");
}

TEST(DurableFileTest, TornAppendLeavesAStrictPrefixOnDisk) {
  ScopedTempDir dir("torn");
  StorageFaultInjector injector(1);
  injector.ArmCrash(dir.path(), /*after_appends=*/0, /*torn_bytes=*/4);

  DurableFile file;
  ASSERT_TRUE(file.Open(dir.File("a.log"), &injector).ok());
  EXPECT_EQ(file.Append("abcdefgh").code(), common::StatusCode::kIOError);
  // The prefix really landed — that is the torn tail recovery must detect.
  EXPECT_EQ(ReadAll(dir.File("a.log")), "abcd");
}

TEST(DurableFileTest, BitFlipReturnsOkButCorruptsTheRecord) {
  ScopedTempDir dir("flip");
  StorageFaultInjector injector(1);
  StorageFaultInjector::Policy policy;
  policy.bitflip_probability = 1.0;
  injector.SetPolicy(dir.path(), policy);

  DurableFile file;
  ASSERT_TRUE(file.Open(dir.File("a.log"), &injector).ok());
  // The writer is told Ok: media corruption is invisible to it.
  ASSERT_TRUE(file.Append("hello world").ok());
  std::string on_disk = ReadAll(dir.File("a.log"));
  ASSERT_EQ(on_disk.size(), 11u);
  size_t diffs = 0;
  for (size_t i = 0; i < on_disk.size(); ++i) {
    if (on_disk[i] != "hello world"[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(WriteFileAtomicTest, CrashedPathRefusesAndPreservesOldFile) {
  ScopedTempDir dir("atomic");
  StorageFaultInjector injector(1);
  const std::string path = dir.File("snap");
  ASSERT_TRUE(common::WriteFileAtomic(path, "old good data", &injector).ok());

  // Fire the armed crash, then try to replace the file.
  injector.ArmCrash(dir.path(), /*after_appends=*/0, /*torn_bytes=*/1);
  DurableFile trigger;
  ASSERT_TRUE(trigger.Open(dir.File("w.log"), &injector).ok());
  EXPECT_FALSE(trigger.Append("x").ok());

  EXPECT_EQ(common::WriteFileAtomic(path, "new data", &injector).code(),
            common::StatusCode::kIOError);
  EXPECT_EQ(ReadAll(path), "old good data");

  injector.ClearCrashes();
  ASSERT_TRUE(common::WriteFileAtomic(path, "new data", &injector).ok());
  EXPECT_EQ(ReadAll(path), "new data");
}

// --- Snapshot envelope ------------------------------------------------------

TEST(SnapshotEnvelopeTest, RoundTripAndKindVersionChecks) {
  ScopedTempDir dir("envelope");
  const std::string path = dir.File("snap");
  const std::string payload = "entity records go here";
  ASSERT_TRUE(common::WriteSnapshotFile(path, "store", 1, payload).ok());

  auto read = common::ReadSnapshotFile(path, "store", 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);

  EXPECT_EQ(common::ReadSnapshotFile(path, "index", 1).status().code(),
            common::StatusCode::kCorruption);
  EXPECT_EQ(common::ReadSnapshotFile(path, "store", 2).status().code(),
            common::StatusCode::kCorruption);
  EXPECT_EQ(common::ReadSnapshotFile(dir.File("absent"), "store", 1)
                .status()
                .code(),
            common::StatusCode::kIOError);
}

TEST(SnapshotEnvelopeTest, FlippingAnySingleByteIsRejected) {
  ScopedTempDir dir("flipany");
  const std::string path = dir.File("snap");
  ASSERT_TRUE(
      common::WriteSnapshotFile(path, "store", 1, "payload bytes").ok());
  const std::string good = ReadAll(path);
  ASSERT_FALSE(good.empty());

  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x01;
    // Raw stream on purpose: the test simulates the corruption itself.
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bad;
    out.close();
    auto read = common::ReadSnapshotFile(path, "store", 1);
    EXPECT_FALSE(read.ok()) << "flip at byte " << i << " was accepted";
    EXPECT_EQ(read.status().code(), common::StatusCode::kCorruption)
        << "flip at byte " << i;
  }
}

// --- WriteAheadLog ----------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  ScopedTempDir dir("wal_roundtrip");
  const std::string path = dir.File("a.wal");
  std::vector<std::string> records = {
      "plain record",
      "",  // empty record is legal
      "payload with\nnewlines\nand rec 9 tokens",
      std::string("\0binary\x01\x02", 9),
  };
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (const std::string& r : records) ASSERT_TRUE(wal.Append(r).ok());
    EXPECT_EQ(wal.appended_records(), records.size());
  }
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, records);
  EXPECT_FALSE(replay.value().torn_tail);

  // A missing file is an empty log, not an error.
  auto empty = WriteAheadLog::Replay(dir.File("absent.wal"));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().records.empty());
  EXPECT_FALSE(empty.value().torn_tail);
}

TEST(WalTest, ReopenedLogKeepsAppending) {
  ScopedTempDir dir("wal_reopen");
  const std::string path = dir.File("a.wal");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("first").ok());
  }
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("second").ok());
  }
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records,
            (std::vector<std::string>{"first", "second"}));
}

// The property fuzz: truncate the log at EVERY byte offset. Recovery must
// never crash, never lose a record whose full frame is on disk, and never
// resurrect a partially written one.
TEST(WalTest, TruncationAtEveryByteOffsetReplaysExactlyTheFullFrames) {
  ScopedTempDir dir("wal_fuzz");
  const std::string path = dir.File("a.wal");
  // Adversarial payloads: frame-like text, newlines, binary, empties.
  std::vector<std::string> records = {
      "alpha", "", "rec 5 0000000000000000\nfake", "with\nnewline",
      std::string("\x00\x01\x02", 3), "tail-record",
  };
  std::vector<uint64_t> boundaries;  // acked_bytes after each append
  uint64_t header_end = 0;
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    header_end = wal.acked_bytes();  // just the 8-byte header
    for (const std::string& r : records) {
      ASSERT_TRUE(wal.Append(r).ok());
      boundaries.push_back(wal.acked_bytes());
    }
  }
  const std::string full = ReadAll(path);
  ASSERT_EQ(full.size(), boundaries.back());

  const std::string probe = dir.File("probe.wal");
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    // Raw stream on purpose: the test simulates the torn file itself.
    {
      std::ofstream out(probe, std::ios::trunc | std::ios::binary);
      out << full.substr(0, cut);
    }
    auto replay_or = WriteAheadLog::Replay(probe);
    ASSERT_TRUE(replay_or.ok()) << "cut at " << cut;
    const WriteAheadLog::ReplayResult& replay = replay_or.value();

    if (cut == 0) {
      // Empty file: a log that was never written.
      EXPECT_TRUE(replay.records.empty()) << "cut at " << cut;
      EXPECT_FALSE(replay.torn_tail) << "cut at " << cut;
      continue;
    }
    // Full frames on disk at this cut = boundaries at or below it.
    size_t expect_count = 0;
    uint64_t expect_valid = header_end;
    for (uint64_t b : boundaries) {
      if (b <= cut) {
        ++expect_count;
        expect_valid = b;
      }
    }
    if (cut < header_end) expect_valid = 0;  // torn mid-header
    ASSERT_EQ(replay.records.size(), expect_count) << "cut at " << cut;
    for (size_t i = 0; i < expect_count; ++i) {
      EXPECT_EQ(replay.records[i], records[i]) << "cut at " << cut;
    }
    // Torn exactly when the cut is not on a record (or header) boundary.
    bool on_boundary = cut == header_end;
    for (uint64_t b : boundaries) on_boundary = on_boundary || cut == b;
    EXPECT_EQ(replay.torn_tail, !on_boundary) << "cut at " << cut;
    EXPECT_EQ(replay.valid_bytes, expect_valid) << "cut at " << cut;
  }
}

TEST(WalTest, TornAppendPoisonsTheLogUntilReset) {
  ScopedTempDir dir("wal_poison");
  StorageFaultInjector injector(1);
  const std::string path = dir.File("a.wal");

  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, &injector).ok());
  ASSERT_TRUE(wal.Append("good").ok());

  // Tear mid-frame (10 bytes of the frame land), then restore power.
  injector.ArmCrash(dir.path(), /*after_appends=*/0, /*torn_bytes=*/10);
  EXPECT_EQ(wal.Append("lost-record").code(), common::StatusCode::kIOError);
  injector.ClearCrashes();

  // Appending behind an unverifiable tail would be silently dropped by
  // Replay — the log refuses until recovery truncates it.
  EXPECT_EQ(wal.Append("after").code(), common::StatusCode::kIOError);

  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, (std::vector<std::string>{"good"}));
  EXPECT_TRUE(replay.value().torn_tail);

  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append("after").ok());
  auto after = WriteAheadLog::Replay(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().records, (std::vector<std::string>{"after"}));
  EXPECT_FALSE(after.value().torn_tail);
}

TEST(WalTest, BitFlippedRecordStopsReplayAtTheFlip) {
  ScopedTempDir dir("wal_bitrot");
  StorageFaultInjector injector(1);
  const std::string path = dir.File("a.wal");

  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, &injector).ok());
  ASSERT_TRUE(wal.Append("intact").ok());

  StorageFaultInjector::Policy policy;
  policy.bitflip_probability = 1.0;
  injector.SetPolicy(dir.path(), policy);
  ASSERT_TRUE(wal.Append("rotten").ok());  // writer cannot tell
  injector.ClearAllPolicies();

  // The checksum catches the rot; nothing after the bad record is trusted.
  auto replay = WriteAheadLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, (std::vector<std::string>{"intact"}));
  EXPECT_TRUE(replay.value().torn_tail);
}

// --- ClusterNode durability -------------------------------------------------

TEST(ClusterNodeDurabilityTest, RecoverReplaysWalOnTopOfCheckpoint) {
  ScopedTempDir dir("node_recover");
  {
    ClusterNode node(0);
    ASSERT_TRUE(node.EnableDurability(dir.path()).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(node.Ingest(MakeEntity("e" + std::to_string(i))).ok());
    }
    node.MineAndIndex();  // so the index snapshot covers e0..e2
    ASSERT_TRUE(node.Checkpoint().ok());  // e0..e2 now in the snapshot
    for (int i = 3; i < 5; ++i) {
      ASSERT_TRUE(node.Ingest(MakeEntity("e" + std::to_string(i))).ok());
    }
    // e3, e4 live only in the WAL; the node dies here.
  }
  ClusterNode revived(0);
  ASSERT_TRUE(revived.EnableDurability(dir.path()).ok());
  ASSERT_TRUE(revived.Recover().ok());
  EXPECT_EQ(revived.store().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(revived.store().Contains("e" + std::to_string(i)));
  }
  // Replayed entities are searchable without a re-mine.
  EXPECT_EQ(revived.index().Term("battery").size(), 5u);
  obs::MetricsSnapshot snapshot = revived.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("wal/replayed_records_total"), 2u);
  EXPECT_EQ(snapshot.CounterValue("wal/torn_tail_detected_total"), 0u);
  // Recovery compacted: a third incarnation replays nothing.
  ClusterNode third(0);
  ASSERT_TRUE(third.EnableDurability(dir.path()).ok());
  ASSERT_TRUE(third.Recover().ok());
  EXPECT_EQ(third.store().size(), 5u);
  EXPECT_EQ(third.metrics().Snapshot().CounterValue(
                "wal/replayed_records_total"),
            0u);
}

TEST(ClusterNodeDurabilityTest, UnackedWriteIsNeitherStoredNorRecovered) {
  ScopedTempDir dir("node_unacked");
  StorageFaultInjector injector(1);
  {
    ClusterNode node(0);
    ASSERT_TRUE(node.EnableDurability(dir.path(), &injector).ok());
    ASSERT_TRUE(node.Ingest(MakeEntity("acked")).ok());
    // The next WAL append tears mid-frame: the write must not be acked,
    // and the store must not accept it.
    injector.ArmCrash(dir.path(), /*after_appends=*/0, /*torn_bytes=*/7);
    EXPECT_EQ(node.Ingest(MakeEntity("lost")).code(),
              common::StatusCode::kIOError);
    EXPECT_FALSE(node.store().Contains("lost"));
    EXPECT_EQ(node.metrics()
                  .Snapshot()
                  .CounterValue("wal/append_failures_total"),
              1u);
  }
  injector.ClearCrashes();
  ClusterNode revived(0);
  ASSERT_TRUE(revived.EnableDurability(dir.path(), &injector).ok());
  ASSERT_TRUE(revived.Recover().ok());
  // Exactly the acked record came back; the torn one was detected, not
  // resurrected.
  EXPECT_EQ(revived.store().size(), 1u);
  EXPECT_TRUE(revived.store().Contains("acked"));
  obs::MetricsSnapshot snapshot = revived.metrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("wal/replayed_records_total"), 1u);
  EXPECT_EQ(snapshot.CounterValue("wal/torn_tail_detected_total"), 1u);
}

TEST(ClusterNodeDurabilityTest, AutoCheckpointEveryNAppends) {
  ScopedTempDir dir("node_autockpt");
  ClusterNode node(0);
  ASSERT_TRUE(node.EnableDurability(dir.path(), nullptr,
                                    /*checkpoint_every_appends=*/2)
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(node.Ingest(MakeEntity("e" + std::to_string(i))).ok());
  }
  // Appends 2 and 4 triggered checkpoints (plus the one Recover would do);
  // only e4 is still WAL-resident.
  EXPECT_EQ(node.metrics().Snapshot().CounterValue("wal/checkpoints_total"),
            2u);
  auto replay = WriteAheadLog::Replay(dir.File("node-0.wal"));
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  auto last = Entity::Deserialize(replay.value().records[0]);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value().id(), "e4");
}

TEST(ClusterDurabilityTest, WholeClusterRestartsFromItsDirectory) {
  ScopedTempDir dir("cluster_restart");
  std::vector<std::string> ids = {"d1", "d2", "d3", "d4", "d5", "d6", "d7"};
  {
    Cluster cluster(3);
    ASSERT_TRUE(cluster.EnableDurability({dir.path(), 0}).ok());
    for (const std::string& id : ids) {
      ASSERT_TRUE(cluster.Ingest(MakeEntity(id)).ok());
    }
    cluster.MineAndIndexAll();  // index the shards before the checkpoint
    ASSERT_TRUE(cluster.CheckpointAll().ok());
  }
  Cluster restarted(3);
  ASSERT_TRUE(restarted.EnableDurability({dir.path(), 0}).ok());
  EXPECT_EQ(restarted.TotalEntities(), ids.size());
  // No re-mine needed: the index shards came back from their snapshots.
  platform::SearchResult result = restarted.Search("battery");
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.docs.size(), ids.size());
}

TEST(ClusterDurabilityTest, CorruptCheckpointSurfacesAsCorruption) {
  ScopedTempDir dir("cluster_corrupt");
  {
    ClusterNode node(0);
    ASSERT_TRUE(node.EnableDurability(dir.path()).ok());
    ASSERT_TRUE(node.Ingest(MakeEntity("a")).ok());
    ASSERT_TRUE(node.Checkpoint().ok());
  }
  // Flip one payload byte of the checkpointed store segment.
  std::string seg = ReadAll(dir.File("node-0.store-1.wfseg"));
  ASSERT_FALSE(seg.empty());
  seg[seg.size() - 1] ^= 0x01;
  {
    // Raw stream on purpose: the test simulates the corruption itself.
    std::ofstream out(dir.File("node-0.store-1.wfseg"),
                      std::ios::trunc | std::ios::binary);
    out << seg;
  }
  // Segment tiers load when durability is enabled, so the corruption
  // surfaces there — before the node ever serves a query.
  ClusterNode revived(0);
  EXPECT_EQ(revived.EnableDurability(dir.path()).code(),
            common::StatusCode::kCorruption);
}

}  // namespace
}  // namespace wf
