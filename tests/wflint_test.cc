// Unit tests for the wflint static-analysis pass: each rule must fire on a
// known-bad snippet, stay quiet on the idiomatic equivalent, and honor the
// per-file allow() suppression.
//
// The bad snippets live in string literals, which the linter scrubs before
// matching — so this file itself stays wflint-clean.

#include "tools/wflint/wflint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace wf::tools::wflint {
namespace {

std::vector<Violation> LintSnippet(const std::string& path,
                                   const std::string& content) {
  Linter linter;
  linter.CollectDeclarations({path, content});
  return linter.Lint({path, content});
}

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(), [&rule](const Violation& v) {
    return v.rule == rule;
  });
}

TEST(WflintRulesTest, EveryRuleHasIdAndSummary) {
  ASSERT_FALSE(Rules().empty());
  for (const RuleInfo& r : Rules()) {
    EXPECT_TRUE(IsKnownRule(r.id));
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
}

// --- discarded-status -------------------------------------------------------

TEST(DiscardedStatusTest, FlagsBareCallToStatusReturningFunction) {
  const std::string src =
      "common::Status Save(const std::string& path);\n"
      "void Run() {\n"
      "  Save(\"/tmp/x\");\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  ASSERT_TRUE(HasRule(vs, "discarded-status"));
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(DiscardedStatusTest, FlagsDiscardedResultThroughReceiverChain) {
  const std::string src =
      "Result<Entity> Get(const std::string& id);\n"
      "void Run(Store* store) {\n"
      "  store->Get(\"id\");\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, FlagsMultiLineDiscardedCall) {
  const std::string src =
      "common::Status RegisterService(const std::string& name,\n"
      "                               Handler handler);\n"
      "void Run(Bus* bus) {\n"
      "  bus->RegisterService(\"node/search\",\n"
      "                       MakeHandler());\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, IgnoresConsumedCalls) {
  const std::string src =
      "common::Status Save(const std::string& path);\n"
      "common::Status Run() {\n"
      "  common::Status s = Save(\"/tmp/x\");\n"
      "  if (!Save(\"/tmp/y\").ok()) return s;\n"
      "  WF_RETURN_IF_ERROR(Save(\"/tmp/z\"));\n"
      "  (void)Save(\"/tmp/w\");\n"
      "  return Save(\"/tmp/v\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, IgnoresCallsToNonFallibleFunctions) {
  const std::string src =
      "void Log(const std::string& msg);\n"
      "void Run() {\n"
      "  Log(\"hello\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

// --- raw-new / raw-delete ---------------------------------------------------

TEST(RawNewTest, FlagsPlainNewAndDelete) {
  const std::string src =
      "void Run() {\n"
      "  int* p = new int(7);\n"
      "  delete p;\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_TRUE(HasRule(vs, "raw-new"));
  EXPECT_TRUE(HasRule(vs, "raw-delete"));
}

TEST(RawNewTest, AllowsStaticLeakIdiomAndDeletedFunctions) {
  const std::string src =
      "const Vocab& GetVocab() {\n"
      "  static const Vocab* kVocab = new Vocab{1, 2};\n"
      "  return *kVocab;\n"
      "}\n"
      "const Map& GetMap() {\n"
      "  static const auto* kMap =\n"
      "      new std::unordered_map<std::string, int>{{\"a\", 1}};\n"
      "  return *kMap;\n"
      "}\n"
      "struct NoCopy {\n"
      "  NoCopy(const NoCopy&) = delete;\n"
      "};\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "raw-new"));
  EXPECT_FALSE(HasRule(vs, "raw-delete"));
}

// --- banned-rng -------------------------------------------------------------

TEST(BannedRngTest, FlagsEveryNondeterministicSource) {
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "int Roll() { return rand() % 6; }\n"),
      "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "void Seed() { srand(42); }\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "std::random_device rd;\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "std::mt19937 engine(12345);\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "auto seed = time(nullptr);\n"), "banned-rng"));
}

TEST(BannedRngTest, IgnoresSeededProjectRngAndLookalikes) {
  const std::string src =
      "wf::common::Rng rng(42);\n"
      "int x = rng.Uniform(0, 6);\n"
      "int operand = 3;  // 'rand' inside a word must not fire\n"
      "double runtime = Measure();\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "banned-rng"));
}

// --- using-namespace-header / include-guard ---------------------------------

TEST(HeaderRulesTest, FlagsUsingNamespaceInHeaderOnly) {
  const std::string src =
      "#pragma once\n"
      "using namespace std;\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.h", src), "using-namespace-header"));
  // The same text in a .cc is allowed (discouraged, but not banned).
  EXPECT_FALSE(
      HasRule(LintSnippet("a.cc", "using namespace std;\n"),
              "using-namespace-header"));
}

TEST(HeaderRulesTest, RequiresPragmaOnceOrIncludeGuard) {
  EXPECT_TRUE(HasRule(LintSnippet("a.h", "struct X {};\n"),
                      "include-guard"));
  EXPECT_FALSE(HasRule(
      LintSnippet("a.h", "#pragma once\nstruct X {};\n"), "include-guard"));
  EXPECT_FALSE(HasRule(
      LintSnippet("a.h",
                  "#ifndef WF_A_H_\n#define WF_A_H_\nstruct X {};\n"
                  "#endif  // WF_A_H_\n"),
      "include-guard"));
  // An #ifndef with no matching #define is not a guard.
  EXPECT_TRUE(HasRule(
      LintSnippet("a.h", "#ifndef WF_A_H_\nstruct X {};\n#endif\n"),
      "include-guard"));
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", "struct X {};\n"),
                       "include-guard"));
}

// --- float-equality ---------------------------------------------------------

TEST(FloatEqualityTest, FlagsBareFloatLiteralArguments) {
  EXPECT_TRUE(HasRule(
      LintSnippet("t.cc", "  EXPECT_EQ(c.precision(), 0.0);\n"),
      "float-equality"));
  EXPECT_TRUE(HasRule(
      LintSnippet("t.cc", "  ASSERT_EQ(1.5e-3, Compute());\n"),
      "float-equality"));
}

TEST(FloatEqualityTest, IgnoresToleranceAwareAndNonFloatCompares) {
  const std::string src =
      "  EXPECT_EQ(tokens.size(), 3u);\n"
      "  EXPECT_EQ(name, \"1,299.50\");\n"
      "  EXPECT_NEAR(c.precision(), 0.0, 1e-12);\n"
      "  EXPECT_EQ(index.Range(\"score\", 5.0, 10.0), expected);\n";
  EXPECT_FALSE(HasRule(LintSnippet("t.cc", src), "float-equality"));
}

// --- unchecked-rpc ----------------------------------------------------------

TEST(UncheckedRpcTest, FlagsDiscardedBusCallOnQueryPath) {
  const std::string src =
      "void Run(VinciBus* bus) {\n"
      "  bus->Call(\"node/0/search\", request);\n"
      "}\n";
  std::vector<Violation> vs =
      LintSnippet("src/platform/query_service.cc", src);
  ASSERT_TRUE(HasRule(vs, "unchecked-rpc"));
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(UncheckedRpcTest, FlagsDereferenceWithoutStatusCheck) {
  // Star-deref of the whole receiver chain.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(Cluster* c) {\n"
                  "  std::string body = *c->bus().Call(\"node/0/f\", req);\n"
                  "}\n"),
      "unchecked-rpc"));
  // Member access on the temporary Result.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/platform/query_service.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  auto body = bus->Call(\"node/0/f\", req).value();\n"
                  "}\n"),
      "unchecked-rpc"));
}

TEST(UncheckedRpcTest, IgnoresCheckedCallsAssignmentsAndOtherLayers) {
  // Assign-then-check (the idiomatic shape) is quiet.
  const std::string checked =
      "void Run(Cluster* c) {\n"
      "  auto response = c->bus().Call(\"node/0/fetch\", req, opts);\n"
      "  if (!response.ok()) return;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/query_service.cc", checked),
                       "unchecked-rpc"));
  // Inline .ok() is quiet.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  if (!bus->Call(\"node/0/f\", req).ok()) return;\n"
                  "}\n"),
      "unchecked-rpc"));
  // CallAll returns per-service Results the gather loop inspects.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  auto scattered = bus->CallAll(request);\n"
                  "}\n"),
      "unchecked-rpc"));
  // Identical bad code outside query-path files belongs to other rules.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/ingest.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  bus->Call(\"node/0/search\", request);\n"
                  "}\n"),
      "unchecked-rpc"));
}

// --- platform-raw-timing ----------------------------------------------------

TEST(PlatformRawTimingTest, FlagsRawClockReadsInPlatformCode) {
  const std::string src =
      "void Run() {\n"
      "  auto a = std::chrono::steady_clock::now();\n"
      "  auto b = std::chrono::system_clock::now();\n"
      "  auto c = std::chrono::high_resolution_clock::now();\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/vinci.cc", src);
  size_t hits = 0;
  for (const Violation& v : vs) {
    if (v.rule == "platform-raw-timing") ++hits;
  }
  EXPECT_EQ(hits, 3u);
}

TEST(PlatformRawTimingTest, IgnoresObsTimersAndOtherLayers) {
  // The sanctioned replacements in platform code are clean.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run(obs::Histogram* h) {\n"
                  "  obs::ScopedTimer timer(h);\n"
                  "  uint64_t t = obs::MonotonicNowUs();\n"
                  "}\n"),
      "platform-raw-timing"));
  // The identical raw read outside platform/ (wf_obs itself, core, tests)
  // is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/obs/timer.cc", raw),
                       "platform-raw-timing"));
  EXPECT_FALSE(HasRule(LintSnippet("src/core/miner.cc", raw),
                       "platform-raw-timing"));
  // sleep_for and duration arithmetic are not clock reads.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run() {\n"
                  "  std::this_thread::sleep_for(\n"
                  "      std::chrono::microseconds(10));\n"
                  "}\n"),
      "platform-raw-timing"));
}

TEST(PlatformRawTimingTest, HonorsAllowSuppression) {
  const std::string src =
      "// wflint: allow(platform-raw-timing)\n"
      "void Run() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/vinci.cc", src),
                       "platform-raw-timing"));
}

// --- platform-raw-thread ----------------------------------------------------

TEST(PlatformRawThreadTest, FlagsRawThreadAndAsyncInPlatformAndCore) {
  const std::string src =
      "void Run() {\n"
      "  std::thread t([] {});\n"
      "  auto f = std::async(Work);\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/cluster.cc", src);
  size_t hits = 0;
  for (const Violation& v : vs) {
    if (v.rule == "platform-raw-thread") ++hits;
  }
  EXPECT_EQ(hits, 2u);
  // Core code is in scope too (miners must not spawn their own threads).
  EXPECT_TRUE(HasRule(LintSnippet("src/core/miner.cc", src),
                      "platform-raw-thread"));
}

TEST(PlatformRawThreadTest, IgnoresPoolTypesAndOtherLayers) {
  // Scheduling through the shared pool types is the sanctioned path.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(MineExecutor* pool) {\n"
                  "  pool->Run(count, [&](size_t i) { Mine(i); });\n"
                  "}\n"),
      "platform-raw-thread"));
  // this_thread utilities are not thread spawns.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run() {\n"
                  "  std::this_thread::sleep_for(\n"
                  "      std::chrono::microseconds(10));\n"
                  "}\n"),
      "platform-raw-thread"));
  // The identical spawn outside platform/ and core/ (tests, tools, bench
  // drive concurrency however they like) is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  std::thread t([] {});\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("tests/cluster_test.cc", raw),
                       "platform-raw-thread"));
  EXPECT_FALSE(HasRule(LintSnippet("bench/bench_platform_scaling.cc", raw),
                       "platform-raw-thread"));
}

TEST(PlatformRawThreadTest, HonorsAllowSuppressionForPoolImplementations) {
  // The pool implementations themselves own worker threads; they carry the
  // file-level allow() this test mirrors.
  const std::string src =
      "// wflint: allow(platform-raw-thread)\n"
      "void Start() {\n"
      "  workers_.emplace_back([this] { WorkerLoop(); });\n"
      "  std::thread t([] {});\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/mine_executor.cc", src),
                       "platform-raw-thread"));
}

// --- platform-raw-file-io ---------------------------------------------------

TEST(PlatformRawFileIoTest, FlagsRawWritePathsInPlatformCode) {
  const std::string src =
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "  std::fstream f(path);\n"
      "  FILE* fp = fopen(path.c_str(), \"w\");\n"
      "  fwrite(buf, 1, n, fp);\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/data_store.cc", src);
  size_t hits = 0;
  for (const Violation& v : vs) {
    if (v.rule == "platform-raw-file-io") ++hits;
  }
  EXPECT_EQ(hits, 4u);
}

TEST(PlatformRawFileIoTest, IgnoresDurableLayerReadsAndOtherLayers) {
  // The sanctioned durable-file layer calls are clean in platform code.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/data_store.cc",
                  "common::Status Run(common::StorageFaultInjector* inj) {\n"
                  "  common::DurableFile f;\n"
                  "  WF_RETURN_IF_ERROR(f.Open(path, inj));\n"
                  "  return common::WriteSnapshotFile(path, \"store\", 1,\n"
                  "                                   payload, inj);\n"
                  "}\n"),
      "platform-raw-file-io"));
  // Reads are out of scope: only the write path must be durable.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/data_store.cc",
                  "void Run() {\n"
                  "  std::ifstream in(path, std::ios::binary);\n"
                  "}\n"),
      "platform-raw-file-io"));
  // The identical raw stream outside platform/ (wf_common owns the one
  // sanctioned stream; tools and tests write freely) is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/common/durable_file.cc", raw),
                       "platform-raw-file-io"));
  EXPECT_FALSE(HasRule(LintSnippet("src/tools/bench/bench_json.cc", raw),
                       "platform-raw-file-io"));
}

TEST(PlatformRawFileIoTest, HonorsAllowSuppression) {
  const std::string src =
      "// wflint: allow(platform-raw-file-io)\n"
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/data_store.cc", src),
                       "platform-raw-file-io"));
}

// --- suppressions -----------------------------------------------------------

TEST(SuppressionTest, FileLevelAllowSilencesNamedRuleOnly) {
  const std::string src =
      "// wflint: allow(banned-rng)\n"
      "std::mt19937 engine(12345);\n"
      "int* leak = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "banned-rng"));
  EXPECT_TRUE(HasRule(vs, "raw-new"));
}

TEST(SuppressionTest, AllowListTakesMultipleRules) {
  const std::string src =
      "// wflint: allow(banned-rng, raw-new)\n"
      "std::mt19937 engine(12345);\n"
      "int* leak = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "banned-rng"));
  EXPECT_FALSE(HasRule(vs, "raw-new"));
}

TEST(SuppressionTest, UnknownRuleInAllowIsItselfAViolation) {
  std::vector<Violation> vs =
      LintSnippet("a.cc", "// wflint: allow(not-a-rule)\nint x = 1;\n");
  ASSERT_TRUE(HasRule(vs, "unknown-rule"));
}

// --- scrubbing and reporting ------------------------------------------------

TEST(ScrubTest, CommentsAndStringsNeverFireRules) {
  const std::string src =
      "// rand() in a comment\n"
      "/* std::random_device in a block\n"
      "   comment spanning lines */\n"
      "const char* doc = \"call srand(1) and delete p\";\n"
      "const char* raw = R\"(new int used with mt19937)\";\n";
  EXPECT_TRUE(LintSnippet("a.cc", src).empty());
}

TEST(ReportTest, TsvReportIsSortedAndMachineReadable) {
  std::vector<Violation> vs = {
      {"b.cc", 9, "raw-new", "second"},
      {"a.cc", 3, "banned-rng", "first"},
  };
  EXPECT_EQ(FormatReport(vs),
            "a.cc\t3\tbanned-rng\tfirst\n"
            "b.cc\t9\traw-new\tsecond\n");
}

TEST(ReportTest, LintOutputIsSortedByFileLineRule) {
  const std::string src =
      "std::mt19937 b(1);\n"
      "int* p = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].line, 1u);
  EXPECT_EQ(vs[1].line, 2u);
}

}  // namespace
}  // namespace wf::tools::wflint
