// Unit tests for the wflint v2 analysis engine: each rule must fire on a
// known-bad snippet, stay quiet on the idiomatic equivalent, honor the
// per-file allow() suppression, and — for the cross-file families — reason
// across more than one SourceFile. The suite ends with the fix-point test:
// the shipped tree itself must scan clean.
//
// The bad snippets live in string literals, which the engine scrubs before
// matching — so this file itself stays wflint-clean.

#include "tools/wflint/wflint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/json_checker.h"

namespace wf::tools::wflint {
namespace {

std::vector<Violation> LintFiles(const std::vector<SourceFile>& files) {
  Engine engine;
  for (const SourceFile& f : files) engine.AddFile(f);
  return engine.Run();
}

std::vector<Violation> LintSnippet(const std::string& path,
                                   const std::string& content) {
  return LintFiles({{path, content}});
}

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(), [&rule](const Violation& v) {
    return v.rule == rule;
  });
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  size_t hits = 0;
  for (const Violation& v : vs) {
    if (v.rule == rule) ++hits;
  }
  return hits;
}

TEST(WflintRulesTest, EveryRuleHasIdAndSummary) {
  ASSERT_FALSE(Rules().empty());
  for (const RuleInfo& r : Rules()) {
    EXPECT_TRUE(IsKnownRule(r.id));
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
}

// --- discarded-status -------------------------------------------------------

TEST(DiscardedStatusTest, FlagsBareCallToStatusReturningFunction) {
  const std::string src =
      "common::Status Save(const std::string& path);\n"
      "void Run() {\n"
      "  Save(\"/tmp/x\");\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  ASSERT_TRUE(HasRule(vs, "discarded-status"));
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(DiscardedStatusTest, FlagsDiscardedResultThroughReceiverChain) {
  const std::string src =
      "Result<Entity> Get(const std::string& id);\n"
      "void Run(Store* store) {\n"
      "  store->Get(\"id\");\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, FlagsMultiLineDiscardedCall) {
  const std::string src =
      "common::Status RegisterService(const std::string& name,\n"
      "                               Handler handler);\n"
      "void Run(Bus* bus) {\n"
      "  bus->RegisterService(\"node/search\",\n"
      "                       MakeHandler());\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, IgnoresConsumedCalls) {
  const std::string src =
      "common::Status Save(const std::string& path);\n"
      "common::Status Run() {\n"
      "  common::Status s = Save(\"/tmp/x\");\n"
      "  if (!Save(\"/tmp/y\").ok()) return s;\n"
      "  WF_RETURN_IF_ERROR(Save(\"/tmp/z\"));\n"
      "  (void)Save(\"/tmp/w\");\n"
      "  return Save(\"/tmp/v\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, IgnoresCallsToNonFallibleFunctions) {
  const std::string src =
      "void Log(const std::string& msg);\n"
      "void Run() {\n"
      "  Log(\"hello\");\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "discarded-status"));
}

TEST(DiscardedStatusTest, SeesDeclarationsFromOtherFiles) {
  // Pass 1 collects fallible declarations repo-wide, so a bare call in one
  // file to a Status function declared in another still fires.
  std::vector<Violation> vs = LintFiles(
      {{"api.h",
        "#pragma once\n"
        "common::Status Flush(const std::string& path);\n"},
       {"use.cc",
        "void Run() {\n"
        "  Flush(\"/tmp/x\");\n"
        "}\n"}});
  ASSERT_TRUE(HasRule(vs, "discarded-status"));
  EXPECT_EQ(vs[0].file, "use.cc");
}

// --- raw-new / raw-delete ---------------------------------------------------

TEST(RawNewTest, FlagsPlainNewAndDelete) {
  const std::string src =
      "void Run() {\n"
      "  int* p = new int(7);\n"
      "  delete p;\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_TRUE(HasRule(vs, "raw-new"));
  EXPECT_TRUE(HasRule(vs, "raw-delete"));
}

TEST(RawNewTest, AllowsStaticLeakIdiomAndDeletedFunctions) {
  const std::string src =
      "const Vocab& GetVocab() {\n"
      "  static const Vocab* kVocab = new Vocab{1, 2};\n"
      "  return *kVocab;\n"
      "}\n"
      "const Map& GetMap() {\n"
      "  static const auto* kMap =\n"
      "      new std::unordered_map<std::string, int>{{\"a\", 1}};\n"
      "  return *kMap;\n"
      "}\n"
      "struct NoCopy {\n"
      "  NoCopy(const NoCopy&) = delete;\n"
      "};\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "raw-new"));
  EXPECT_FALSE(HasRule(vs, "raw-delete"));
}

// --- banned-rng -------------------------------------------------------------

TEST(BannedRngTest, FlagsEveryNondeterministicSource) {
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "int Roll() { return rand() % 6; }\n"),
      "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "void Seed() { srand(42); }\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "std::random_device rd;\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "std::mt19937 engine(12345);\n"), "banned-rng"));
  EXPECT_TRUE(HasRule(
      LintSnippet("a.cc", "auto seed = time(nullptr);\n"), "banned-rng"));
}

TEST(BannedRngTest, IgnoresSeededProjectRngAndLookalikes) {
  const std::string src =
      "wf::common::Rng rng(42);\n"
      "int x = rng.Uniform(0, 6);\n"
      "int operand = 3;  // 'rand' inside a word must not fire\n"
      "double runtime = Measure();\n";
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", src), "banned-rng"));
}

// --- using-namespace-header / include-guard ---------------------------------

TEST(HeaderRulesTest, FlagsUsingNamespaceInHeaderOnly) {
  const std::string src =
      "#pragma once\n"
      "using namespace std;\n";
  EXPECT_TRUE(HasRule(LintSnippet("a.h", src), "using-namespace-header"));
  // The same text in a .cc is allowed (discouraged, but not banned).
  EXPECT_FALSE(
      HasRule(LintSnippet("a.cc", "using namespace std;\n"),
              "using-namespace-header"));
}

TEST(HeaderRulesTest, RequiresPragmaOnceOrIncludeGuard) {
  EXPECT_TRUE(HasRule(LintSnippet("a.h", "struct X {};\n"),
                      "include-guard"));
  EXPECT_FALSE(HasRule(
      LintSnippet("a.h", "#pragma once\nstruct X {};\n"), "include-guard"));
  EXPECT_FALSE(HasRule(
      LintSnippet("a.h",
                  "#ifndef WF_A_H_\n#define WF_A_H_\nstruct X {};\n"
                  "#endif  // WF_A_H_\n"),
      "include-guard"));
  // An #ifndef with no matching #define is not a guard.
  EXPECT_TRUE(HasRule(
      LintSnippet("a.h", "#ifndef WF_A_H_\nstruct X {};\n#endif\n"),
      "include-guard"));
  EXPECT_FALSE(HasRule(LintSnippet("a.cc", "struct X {};\n"),
                       "include-guard"));
}

// --- float-equality ---------------------------------------------------------

TEST(FloatEqualityTest, FlagsBareFloatLiteralArguments) {
  EXPECT_TRUE(HasRule(
      LintSnippet("t.cc", "  EXPECT_EQ(c.precision(), 0.0);\n"),
      "float-equality"));
  EXPECT_TRUE(HasRule(
      LintSnippet("t.cc", "  ASSERT_EQ(1.5e-3, Compute());\n"),
      "float-equality"));
}

TEST(FloatEqualityTest, IgnoresToleranceAwareAndNonFloatCompares) {
  const std::string src =
      "  EXPECT_EQ(tokens.size(), 3u);\n"
      "  EXPECT_EQ(name, \"1,299.50\");\n"
      "  EXPECT_NEAR(c.precision(), 0.0, 1e-12);\n"
      "  EXPECT_EQ(index.Range(\"score\", 5.0, 10.0), expected);\n";
  EXPECT_FALSE(HasRule(LintSnippet("t.cc", src), "float-equality"));
}

// --- unchecked-rpc ----------------------------------------------------------

TEST(UncheckedRpcTest, FlagsDiscardedBusCallOnQueryPath) {
  const std::string src =
      "void Run(VinciBus* bus) {\n"
      "  bus->Call(\"node/0/search\", request);\n"
      "}\n";
  std::vector<Violation> vs =
      LintSnippet("src/platform/query_service.cc", src);
  ASSERT_TRUE(HasRule(vs, "unchecked-rpc"));
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(UncheckedRpcTest, FlagsDereferenceWithoutStatusCheck) {
  // Star-deref of the whole receiver chain.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(Cluster* c) {\n"
                  "  std::string body = *c->bus().Call(\"node/0/f\", req);\n"
                  "}\n"),
      "unchecked-rpc"));
  // Member access on the temporary Result.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/platform/query_service.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  auto body = bus->Call(\"node/0/f\", req).value();\n"
                  "}\n"),
      "unchecked-rpc"));
}

TEST(UncheckedRpcTest, IgnoresCheckedCallsAssignmentsAndOtherLayers) {
  // Assign-then-check (the idiomatic shape) is quiet.
  const std::string checked =
      "void Run(Cluster* c) {\n"
      "  auto response = c->bus().Call(\"node/0/fetch\", req, opts);\n"
      "  if (!response.ok()) return;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/query_service.cc", checked),
                       "unchecked-rpc"));
  // Inline .ok() is quiet.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  if (!bus->Call(\"node/0/f\", req).ok()) return;\n"
                  "}\n"),
      "unchecked-rpc"));
  // CallAll returns per-service Results the gather loop inspects.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  auto scattered = bus->CallAll(request);\n"
                  "}\n"),
      "unchecked-rpc"));
  // Identical bad code outside query-path files belongs to other rules.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/ingest.cc",
                  "void Run(VinciBus* bus) {\n"
                  "  bus->Call(\"node/0/search\", request);\n"
                  "}\n"),
      "unchecked-rpc"));
}

// --- serving-unbounded-wait -------------------------------------------------

TEST(ServingUnboundedWaitTest, FlagsUntimedWaitSleepAndDeadlinelessCall) {
  // An untimed cv wait can park a request forever.
  std::vector<Violation> vs = LintSnippet(
      "src/serve/front_door.cc",
      "void Wait(Flight* f) {\n"
      "  std::unique_lock<common::Mutex> lock(f->mu);\n"
      "  f->cv.wait(lock);\n"
      "}\n");
  ASSERT_TRUE(HasRule(vs, "serving-unbounded-wait"));
  EXPECT_EQ(vs[0].line, 3u);
  // Sleeping a serving (caller-runs) thread stalls the caller.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/serve/front_door.cc",
                  "void Backoff() {\n"
                  "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                  "}\n"),
      "serving-unbounded-wait"));
  // A bus call with no deadline can outlive its caller's budget.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/serve/front_door.cc",
                  "void Fetch(VinciBus* bus) {\n"
                  "  auto r = bus->Call(\"node/0/fetch\", req);\n"
                  "  if (!r.ok()) return;\n"
                  "}\n"),
      "serving-unbounded-wait"));
}

TEST(ServingUnboundedWaitTest, QuietOnBoundedWaitsAndDeadlinedCalls) {
  // wait_for under a deadline chunk is the sanctioned shape.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/serve/front_door.cc",
                  "void Wait(Flight* f, const Deadline& deadline) {\n"
                  "  std::unique_lock<common::Mutex> lock(f->mu);\n"
                  "  f->cv.wait_for(lock, std::chrono::microseconds(\n"
                  "      deadline.RemainingUs()));\n"
                  "}\n"),
      "serving-unbounded-wait"));
  // A bus call that threads CallOptions (deadline) through is fine.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/serve/front_door.cc",
                  "void Fetch(VinciBus* bus, const CallOptions& options) {\n"
                  "  auto r = bus->Call(\"node/0/fetch\", req, options);\n"
                  "  if (!r.ok()) return;\n"
                  "}\n"),
      "serving-unbounded-wait"));
  // Identical code outside src/serve belongs to other rules.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/mine_executor.cc",
                  "void Wait(Pool* p) {\n"
                  "  std::unique_lock<common::Mutex> lock(p->mu);\n"
                  "  p->cv.wait(lock);\n"
                  "}\n"),
      "serving-unbounded-wait"));
}

// --- serving-unclamped-hedge ------------------------------------------------

TEST(ServingUnclampedHedgeTest, FlagsHedgeScheduleThatIgnoresTheDeadline) {
  // A hedge fire time computed from the latency histogram alone re-issues
  // work the caller can no longer use.
  std::vector<Violation> vs = LintSnippet(
      "src/serve/hedger.cc",
      "void Plan(Slot* s, uint64_t p95_us) {\n"
      "  s->hedge_at_us = s->start_us + p95_us;\n"
      "}\n");
  ASSERT_TRUE(HasRule(vs, "serving-unclamped-hedge"));
  EXPECT_EQ(vs[0].line, 2u);
  // The platform bus carries the same obligation.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/platform/vinci_extra.cc",
                  "void Plan(Slot* s, uint64_t p95_us) {\n"
                  "  s->reissue_delay_us = p95_us * 2;\n"
                  "}\n"),
      "serving-unclamped-hedge"));
}

TEST(ServingUnclampedHedgeTest, QuietOnClampedSchedulesAndOtherLayers) {
  // Clamping against the expiry in the same statement is the sanctioned
  // shape...
  EXPECT_FALSE(HasRule(
      LintSnippet("src/serve/hedger.cc",
                  "void Plan(Slot* s, uint64_t p95_us, uint64_t expiry_us) "
                  "{\n"
                  "  s->hedge_at_us = std::min(s->start_us + p95_us, "
                  "expiry_us);\n"
                  "}\n"),
      "serving-unclamped-hedge"));
  // ...as is an explicit deadline check in the statement.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/serve/hedger.cc",
                  "void Plan(Slot* s, uint64_t p95_us,\n"
                  "          const Deadline& deadline) {\n"
                  "  s->hedge_at_us =\n"
                  "      deadline.expired() ? 0 : s->start_us + p95_us;\n"
                  "}\n"),
      "serving-unclamped-hedge"));
  // The "never" sentinel is a plain literal init, not a schedule.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/serve/hedger.cc",
                  "void Reset(Slot* s) {\n"
                  "  s->hedge_at_us = 0;\n"
                  "}\n"),
      "serving-unclamped-hedge"));
  // Identical code outside serve/platform is not on the serving path.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/core/miner.cc",
                  "void Plan(Slot* s, uint64_t p95_us) {\n"
                  "  s->hedge_at_us = s->start_us + p95_us;\n"
                  "}\n"),
      "serving-unclamped-hedge"));
}

// --- platform-raw-timing ----------------------------------------------------

TEST(PlatformRawTimingTest, FlagsRawClockReadsInPlatformCode) {
  const std::string src =
      "void Run() {\n"
      "  auto a = std::chrono::steady_clock::now();\n"
      "  auto b = std::chrono::system_clock::now();\n"
      "  auto c = std::chrono::high_resolution_clock::now();\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/vinci.cc", src);
  EXPECT_EQ(CountRule(vs, "platform-raw-timing"), 3u);
}

TEST(PlatformRawTimingTest, IgnoresObsTimersAndOtherLayers) {
  // The sanctioned replacements in platform code are clean.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run(obs::Histogram* h) {\n"
                  "  obs::ScopedTimer timer(h);\n"
                  "  uint64_t t = obs::MonotonicNowUs();\n"
                  "}\n"),
      "platform-raw-timing"));
  // The identical raw read outside platform/ (wf_obs itself, core, tests)
  // is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/obs/timer.cc", raw),
                       "platform-raw-timing"));
  EXPECT_FALSE(HasRule(LintSnippet("src/core/miner.cc", raw),
                       "platform-raw-timing"));
  // sleep_for and duration arithmetic are not clock reads.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run() {\n"
                  "  std::this_thread::sleep_for(\n"
                  "      std::chrono::microseconds(10));\n"
                  "}\n"),
      "platform-raw-timing"));
}

TEST(PlatformRawTimingTest, HonorsAllowSuppression) {
  const std::string src =
      "// wflint: allow(platform-raw-timing)\n"
      "void Run() {\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/vinci.cc", src);
  EXPECT_FALSE(HasRule(vs, "platform-raw-timing"));
  // A suppression that suppressed something is not "unused".
  EXPECT_FALSE(HasRule(vs, "unused-suppression"));
}

// --- platform-raw-thread ----------------------------------------------------

TEST(PlatformRawThreadTest, FlagsRawThreadAndAsyncInPlatformAndCore) {
  const std::string src =
      "void Run() {\n"
      "  std::thread t([] {});\n"
      "  auto f = std::async(Work);\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/cluster.cc", src);
  EXPECT_EQ(CountRule(vs, "platform-raw-thread"), 2u);
  // Core code is in scope too (miners must not spawn their own threads).
  EXPECT_TRUE(HasRule(LintSnippet("src/core/miner.cc", src),
                      "platform-raw-thread"));
}

TEST(PlatformRawThreadTest, IgnoresPoolTypesAndOtherLayers) {
  // Scheduling through the shared pool types is the sanctioned path.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/cluster.cc",
                  "void Run(MineExecutor* pool) {\n"
                  "  pool->Run(count, [&](size_t i) { Mine(i); });\n"
                  "}\n"),
      "platform-raw-thread"));
  // this_thread utilities are not thread spawns.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/vinci.cc",
                  "void Run() {\n"
                  "  std::this_thread::sleep_for(\n"
                  "      std::chrono::microseconds(10));\n"
                  "}\n"),
      "platform-raw-thread"));
  // The identical spawn outside platform/ and core/ (tests, tools, bench
  // drive concurrency however they like) is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  std::thread t([] {});\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("tests/cluster_test.cc", raw),
                       "platform-raw-thread"));
  EXPECT_FALSE(HasRule(LintSnippet("bench/bench_platform_scaling.cc", raw),
                       "platform-raw-thread"));
}

TEST(PlatformRawThreadTest, HonorsAllowSuppressionForPoolImplementations) {
  // The pool implementations themselves own worker threads; they carry the
  // file-level allow() this test mirrors.
  const std::string src =
      "// wflint: allow(platform-raw-thread)\n"
      "void Start() {\n"
      "  workers_.emplace_back([this] { WorkerLoop(); });\n"
      "  std::thread t([] {});\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/mine_executor.cc", src),
                       "platform-raw-thread"));
}

// --- platform-raw-file-io ---------------------------------------------------

TEST(PlatformRawFileIoTest, FlagsRawWritePathsInPlatformCode) {
  const std::string src =
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "  std::fstream f(path);\n"
      "  FILE* fp = fopen(path.c_str(), \"w\");\n"
      "  fwrite(buf, 1, n, fp);\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/platform/data_store.cc", src);
  EXPECT_EQ(CountRule(vs, "platform-raw-file-io"), 4u);
}

TEST(PlatformRawFileIoTest, IgnoresDurableLayerReadsAndOtherLayers) {
  // The sanctioned durable-file layer calls are clean in platform code.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/data_store.cc",
                  "common::Status Run(common::StorageFaultInjector* inj) {\n"
                  "  common::DurableFile f;\n"
                  "  WF_RETURN_IF_ERROR(f.Open(path, inj));\n"
                  "  return common::WriteSnapshotFile(path, \"store\", 1,\n"
                  "                                   payload, inj);\n"
                  "}\n"),
      "platform-raw-file-io"));
  // Reads are out of scope: only the write path must be durable.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/data_store.cc",
                  "void Run() {\n"
                  "  std::ifstream in(path, std::ios::binary);\n"
                  "}\n"),
      "platform-raw-file-io"));
  // The identical raw stream outside platform/ (wf_common owns the one
  // sanctioned stream; tools and tests write freely) is out of scope.
  const std::string raw =
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/common/durable_file.cc", raw),
                       "platform-raw-file-io"));
  EXPECT_FALSE(HasRule(LintSnippet("src/tools/bench/bench_json.cc", raw),
                       "platform-raw-file-io"));
}

TEST(PlatformRawFileIoTest, CoversStoreLayerAndSkipsIncludeLines) {
  // The segment engine writes checkpoints of record; it lives under the
  // same envelope discipline as platform code.
  std::vector<Violation> vs = LintSnippet(
      "src/store/segment.cc",
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "}\n");
  EXPECT_EQ(CountRule(vs, "platform-raw-file-io"), 1u);
  // `#include <fstream>` is how the read side names std::ifstream; the
  // include line itself is not a write.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/store/segment.h",
                  "#include <fstream>\n"
                  "void Run() {\n"
                  "  std::ifstream in(path, std::ios::binary);\n"
                  "}\n"),
      "platform-raw-file-io"));
}

TEST(PlatformRawFileIoTest, HonorsAllowSuppression) {
  const std::string src =
      "// wflint: allow(platform-raw-file-io)\n"
      "void Run() {\n"
      "  std::ofstream out(path, std::ios::trunc);\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintSnippet("src/platform/data_store.cc", src),
                       "platform-raw-file-io"));
}

// --- layering ---------------------------------------------------------------

TEST(LayeringTest, DagIsClosedAndBottomsOutAtCommon) {
  const auto& dag = LayeringDag();
  ASSERT_FALSE(dag.empty());
  // Every dependency target is itself a layer in the DAG.
  for (const auto& [layer, deps] : dag) {
    for (const std::string& dep : deps) {
      EXPECT_TRUE(dag.count(dep)) << layer << " -> " << dep;
      EXPECT_NE(dep, layer) << "self-edges are implicit";
    }
  }
  // common is the foundation: it depends on nothing.
  ASSERT_TRUE(dag.count("common"));
  EXPECT_TRUE(dag.at("common").empty());
  // platform sits above core, never the reverse.
  EXPECT_TRUE(dag.at("platform").count("core"));
  EXPECT_FALSE(dag.at("core").count("platform"));
  // The segment store sits just above the foundation: platform builds on
  // it, and it never reaches back up.
  ASSERT_TRUE(dag.count("store"));
  EXPECT_TRUE(dag.at("platform").count("store"));
  EXPECT_FALSE(dag.at("store").count("platform"));
  EXPECT_TRUE(dag.at("store").count("common"));
}

TEST(LayeringTest, StoreLayerEdges) {
  // store -> platform is an upward include.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/store/lsm.cc", "#include \"platform/cluster.h\"\n"),
      "layering"));
  // platform -> store is a DAG edge; store -> common/obs likewise.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/platform/data_store.cc", "#include \"store/lsm.h\"\n"),
      "layering"));
  EXPECT_FALSE(HasRule(
      LintSnippet("src/store/lsm.cc",
                  "#include \"common/status.h\"\n"
                  "#include \"obs/metrics.h\"\n"
                  "#include \"store/segment.h\"\n"),
      "layering"));
}

TEST(LayeringTest, FlagsUpwardInclude) {
  std::vector<Violation> vs = LintSnippet(
      "src/text/tokenizer.cc", "#include \"platform/vinci.h\"\n");
  ASSERT_TRUE(HasRule(vs, "layering"));
  EXPECT_EQ(vs[0].line, 1u);
  // Even the foundation layer reaching one level up is a finding.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/common/hash.cc", "#include \"obs/metrics.h\"\n"),
      "layering"));
}

TEST(LayeringTest, AllowsDagEdgesIntraLayerAndNonLayerIncludes) {
  const std::string src =
      "#include \"parse/chunker.h\"\n"       // intra-layer
      "#include \"text/token.h\"\n"          // DAG edge: parse -> text
      "#include \"pos/tagger.h\"\n"          // DAG edge: parse -> pos
      "#include \"gtest/gtest.h\"\n";        // not a src/ layer
  EXPECT_FALSE(HasRule(LintSnippet("src/parse/chunker.cc", src), "layering"));
  // Files outside src/ (tests, bench, examples) may include anything.
  EXPECT_FALSE(HasRule(
      LintSnippet("tests/integration_test.cc",
                  "#include \"platform/cluster.h\"\n"
                  "#include \"text/token.h\"\n"),
      "layering"));
}

// --- guarded-by / unguarded-field -------------------------------------------

TEST(GuardedByTest, FlagsUnlockedTouchAndAcceptsLockedOne) {
  const std::string src =
      "#pragma once\n"
      "class Counter {\n"
      " public:\n"
      "  void Bump() { ++count_; }\n"
      "  void SafeBump() {\n"
      "    common::MutexLock lock(mu_);\n"
      "    ++count_;\n"
      "  }\n"
      " private:\n"
      "  mutable common::Mutex mu_;\n"
      "  int count_ WF_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  std::vector<Violation> vs = LintSnippet("src/platform/counter.h", src);
  ASSERT_EQ(CountRule(vs, "guarded-by"), 1u);
  for (const Violation& v : vs) {
    if (v.rule == "guarded-by") {
      EXPECT_NE(v.message.find("Counter::Bump"), std::string::npos)
          << v.message;
    }
  }
}

TEST(GuardedByTest, AcceptsDirectLockCallsAndRequiresAnnotation) {
  const std::string src =
      "#pragma once\n"
      "class Counter {\n"
      " public:\n"
      "  void Bump() {\n"
      "    mu_.lock();\n"
      "    ++count_;\n"
      "    mu_.unlock();\n"
      "  }\n"
      "  void BumpLocked() WF_REQUIRES(mu_) { ++count_; }\n"
      " private:\n"
      "  mutable common::Mutex mu_;\n"
      "  int count_ WF_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(
      HasRule(LintSnippet("src/platform/counter.h", src), "guarded-by"));
}

TEST(GuardedByTest, CrossFileOutOfLineDefinitionsHonorHeaderAnnotations) {
  // The header declares Append as lock-held; the out-of-line definition in
  // the .cc inherits that annotation, so only the unannotated Total fires —
  // and the finding lands on the .cc, where the touch is.
  std::vector<Violation> vs = LintFiles(
      {{"src/platform/ledger.h",
        "#pragma once\n"
        "class Ledger {\n"
        " public:\n"
        "  void Append(int v) WF_REQUIRES(mu_);\n"
        "  int Total() const;\n"
        " private:\n"
        "  mutable common::Mutex mu_;\n"
        "  std::vector<int> entries_ WF_GUARDED_BY(mu_);\n"
        "};\n"},
       {"src/platform/ledger.cc",
        "#include \"platform/ledger.h\"\n"
        "void Ledger::Append(int v) { entries_.push_back(v); }\n"
        "int Ledger::Total() const {\n"
        "  int sum = 0;\n"
        "  for (int v : entries_) sum += v;\n"
        "  return sum;\n"
        "}\n"}});
  ASSERT_EQ(CountRule(vs, "guarded-by"), 1u);
  for (const Violation& v : vs) {
    if (v.rule == "guarded-by") {
      EXPECT_EQ(v.file, "src/platform/ledger.cc");
      EXPECT_NE(v.message.find("Ledger::Total"), std::string::npos)
          << v.message;
    }
  }
}

TEST(GuardedByTest, NoThreadSafetyAnalysisOptsAFunctionOut) {
  const std::string src =
      "#pragma once\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain() WF_NO_THREAD_SAFETY_ANALYSIS { queue_.clear(); }\n"
      " private:\n"
      "  common::Mutex mu_;\n"
      "  std::deque<int> queue_ WF_GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_FALSE(
      HasRule(LintSnippet("src/platform/pool.h", src), "guarded-by"));
}

TEST(UnguardedFieldTest, FlagsBareFieldAfterMutexInAnnotatedLayers) {
  const std::string src =
      "#pragma once\n"
      "class Store {\n"
      " private:\n"
      "  mutable common::Mutex mu_;\n"
      "  std::vector<int> items_;\n"
      "};\n";
  std::vector<Violation> vs = LintSnippet("src/platform/store.h", src);
  ASSERT_TRUE(HasRule(vs, "unguarded-field"));
  // The same shape outside platform/obs/core carries no lock discipline.
  EXPECT_FALSE(
      HasRule(LintSnippet("src/lexicon/store.h", src), "unguarded-field"));
}

TEST(UnguardedFieldTest, ExemptsAtomicsConstantsAndFieldsBeforeTheMutex) {
  const std::string src =
      "#pragma once\n"
      "class Store {\n"
      " private:\n"
      "  std::string path_;\n"                         // before the mutex
      "  mutable common::Mutex mu_;\n"
      "  std::atomic<uint64_t> hits_{0};\n"            // atomic: exempt
      "  std::condition_variable_any cv_;\n"           // cv: exempt
      "  const uint64_t seed_ = 42;\n"                 // immutable: exempt
      "  std::vector<int> items_ WF_GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_FALSE(
      HasRule(LintSnippet("src/obs/store.h", src), "unguarded-field"));
}

// --- unordered-serialization ------------------------------------------------

TEST(UnorderedSerializationTest, FlagsUnorderedIterationInSinkFunction) {
  const std::string src =
      "std::string ToWireCounts() {\n"
      "  std::unordered_map<std::string, int> counts = Collect();\n"
      "  std::string out;\n"
      "  for (const auto& [name, value] : counts) {\n"
      "    out += name;\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  std::vector<Violation> vs = LintSnippet("src/obs/export.cc", src);
  ASSERT_TRUE(HasRule(vs, "unordered-serialization"));
}

TEST(UnorderedSerializationTest, QuietOnOrderedSortedOrNonSinkPaths) {
  // std::map iterates in key order: deterministic by construction.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/export.cc",
                  "std::string ToWireCounts() {\n"
                  "  std::map<std::string, int> counts = Collect();\n"
                  "  std::string out;\n"
                  "  for (const auto& [name, value] : counts) out += name;\n"
                  "  return out;\n"
                  "}\n"),
      "unordered-serialization"));
  // An explicit sort before emitting is the sanctioned escape hatch.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/export.cc",
                  "std::string ToWireCounts() {\n"
                  "  std::unordered_map<std::string, int> counts;\n"
                  "  std::vector<std::string> keys;\n"
                  "  for (const auto& [name, value] : counts) {\n"
                  "    keys.push_back(name);\n"
                  "  }\n"
                  "  std::sort(keys.begin(), keys.end());\n"
                  "  return keys.front();\n"
                  "}\n"),
      "unordered-serialization"));
  // Iteration that never reaches a serialization sink is free to be
  // unordered (lookups, aggregation into keyed maps, ...).
  EXPECT_FALSE(HasRule(
      LintSnippet("src/obs/export.cc",
                  "int SumCounts() {\n"
                  "  std::unordered_map<std::string, int> counts;\n"
                  "  int sum = 0;\n"
                  "  for (const auto& [name, value] : counts) sum += value;\n"
                  "  return sum;\n"
                  "}\n"),
      "unordered-serialization"));
}

TEST(UnorderedSerializationTest, ReachesSinksAcrossFiles) {
  // EmitAll never names a sink itself; it calls Publish, defined in another
  // file, which calls the sink-named WriteRecord. The fixpoint over the
  // call graph still classifies EmitAll's loop as serialization-bound.
  std::vector<Violation> vs = LintFiles(
      {{"src/core/emit.cc",
        "void EmitAll() {\n"
        "  std::unordered_map<std::string, int> pending;\n"
        "  for (const auto& [key, value] : pending) {\n"
        "    Publish(key);\n"
        "  }\n"
        "}\n"},
       {"src/core/publish.cc",
        "void Publish(const std::string& key) {\n"
        "  WriteRecord(key);\n"
        "}\n"}});
  ASSERT_TRUE(HasRule(vs, "unordered-serialization"));
  for (const Violation& v : vs) {
    if (v.rule == "unordered-serialization") {
      EXPECT_EQ(v.file, "src/core/emit.cc");
    }
  }
}

// --- hot-path-alloc ---------------------------------------------------------

TEST(HotPathAllocTest, FlagsByValueStringParamInFrontHalf) {
  const std::string src =
      "std::vector<Token> Tokenize(std::string text) {\n"
      "  return {};\n"
      "}\n";
  ASSERT_TRUE(
      HasRule(LintSnippet("src/text/tokenizer.cc", src), "hot-path-alloc"));
  // Reference and view parameters are the sanctioned shapes.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/text/tokenizer.cc",
                  "std::vector<Token> Tokenize(const std::string& text);\n"
                  "std::vector<Token> Retag(std::string_view text);\n"),
      "hot-path-alloc"));
  // The same by-value copy outside src/{text,pos,parse} is out of scope.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/core/analyzer.cc", src), "hot-path-alloc"));
}

TEST(HotPathAllocTest, FlagsAllocatingSubstrButNotStringViewSlices) {
  EXPECT_TRUE(HasRule(
      LintSnippet("src/pos/tagger.cc",
                  "std::string Cut(const std::string& s) {\n"
                  "  return s.substr(1);\n"
                  "}\n"),
      "hot-path-alloc"));
  // string_view::substr is a pointer adjustment, not an allocation.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/pos/tagger.cc",
                  "std::string Cut(const std::string& s) {\n"
                  "  std::string_view v = s;\n"
                  "  return std::string(v.substr(1));\n"
                  "}\n"),
      "hot-path-alloc"));
}

TEST(HotPathAllocTest, FlagsUnreservedPushBackInLoop) {
  const std::string src =
      "std::vector<int> Collect(size_t n) {\n"
      "  std::vector<int> out;\n"
      "  for (size_t i = 0; i < n; ++i) {\n"
      "    out.push_back(static_cast<int>(i));\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  ASSERT_TRUE(
      HasRule(LintSnippet("src/parse/chunker.cc", src), "hot-path-alloc"));
  // A reserve() anywhere in the function sanctions the loop.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/parse/chunker.cc",
                  "std::vector<int> Collect(size_t n) {\n"
                  "  std::vector<int> out;\n"
                  "  out.reserve(n);\n"
                  "  for (size_t i = 0; i < n; ++i) {\n"
                  "    out.push_back(static_cast<int>(i));\n"
                  "  }\n"
                  "  return out;\n"
                  "}\n"),
      "hot-path-alloc"));
  // push_back outside any loop is a one-off, not a per-element pattern.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/parse/chunker.cc",
                  "void Seed(std::vector<int>* out) {\n"
                  "  out->push_back(1);\n"
                  "}\n"),
      "hot-path-alloc"));
}

TEST(HotPathAllocTest, FlagsTokenLoopStringConstructionInParseAndCore) {
  const std::string src =
      "void Scan(const text::TokenStream& tokens) {\n"
      "  for (const text::Token& t : tokens) {\n"
      "    std::string lower = ToLower(t.text);\n"
      "    Use(lower);\n"
      "  }\n"
      "}\n";
  // The back half is covered too: parse and core iterate the same streams.
  EXPECT_TRUE(
      HasRule(LintSnippet("src/core/analyzer.cc", src), "hot-path-alloc"));
  EXPECT_TRUE(
      HasRule(LintSnippet("src/parse/chunker.cc", src), "hot-path-alloc"));
  // Layers behind the MineContext boundary are out of scope.
  EXPECT_FALSE(
      HasRule(LintSnippet("src/spot/spotter.cc", src), "hot-path-alloc"));
}

TEST(HotPathAllocTest, TokenLoopTemporaryFlaggedHoistedBufferExempt) {
  // A std::string(...) temporary per token is the same churn in disguise.
  EXPECT_TRUE(HasRule(
      LintSnippet("src/core/analyzer.cc",
                  "void Scan(const text::TokenStream& tokens) {\n"
                  "  for (size_t i = 0; i < tokens.size(); ++i) {\n"
                  "    Use(std::string(tokens[i].text));\n"
                  "  }\n"
                  "}\n"),
      "hot-path-alloc"));
  // The sanctioned shape: buffer hoisted above the loop, reused per token.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/core/analyzer.cc",
                  "void Scan(const text::TokenStream& tokens) {\n"
                  "  std::string lower_buf;\n"
                  "  for (const text::Token& t : tokens) {\n"
                  "    Use(common::LowerInto(t.text, &lower_buf));\n"
                  "  }\n"
                  "}\n"),
      "hot-path-alloc"));
  // Loops over non-token state do not pay the per-sentence multiplier.
  EXPECT_FALSE(HasRule(
      LintSnippet("src/core/analyzer.cc",
                  "void Load(const std::vector<Row>& rows) {\n"
                  "  for (const Row& r : rows) {\n"
                  "    std::string key = r.name;\n"
                  "    Use(key);\n"
                  "  }\n"
                  "}\n"),
      "hot-path-alloc"));
}

// --- suppressions -----------------------------------------------------------

TEST(SuppressionTest, FileLevelAllowSilencesNamedRuleOnly) {
  const std::string src =
      "// wflint: allow(banned-rng)\n"
      "std::mt19937 engine(12345);\n"
      "int* leak = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "banned-rng"));
  EXPECT_TRUE(HasRule(vs, "raw-new"));
}

TEST(SuppressionTest, AllowListTakesMultipleRules) {
  const std::string src =
      "// wflint: allow(banned-rng, raw-new)\n"
      "std::mt19937 engine(12345);\n"
      "int* leak = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  EXPECT_FALSE(HasRule(vs, "banned-rng"));
  EXPECT_FALSE(HasRule(vs, "raw-new"));
}

TEST(SuppressionTest, UnknownRuleInAllowIsItselfAViolation) {
  std::vector<Violation> vs =
      LintSnippet("a.cc", "// wflint: allow(not-a-rule)\nint x = 1;\n");
  ASSERT_TRUE(HasRule(vs, "unknown-rule"));
}

TEST(SuppressionTest, AllowThatSuppressesNothingIsUnused) {
  const std::string src =
      "// wflint: allow(banned-rng)\n"
      "int x = 1;\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  ASSERT_TRUE(HasRule(vs, "unused-suppression"));
  EXPECT_EQ(vs[0].line, 1u);  // reported at the allow() comment
  // The moment the rule fires (and is suppressed), the allow() is earning
  // its keep and the finding disappears.
  EXPECT_FALSE(HasRule(
      LintSnippet("a.cc",
                  "// wflint: allow(banned-rng)\n"
                  "std::mt19937 engine(12345);\n"),
      "unused-suppression"));
}

// --- scrubbing and reporting ------------------------------------------------

TEST(ScrubTest, CommentsAndStringsNeverFireRules) {
  const std::string src =
      "// rand() in a comment\n"
      "/* std::random_device in a block\n"
      "   comment spanning lines */\n"
      "const char* doc = \"call srand(1) and delete p\";\n"
      "const char* raw = R\"(new int used with mt19937)\";\n";
  EXPECT_TRUE(LintSnippet("a.cc", src).empty());
}

TEST(ReportTest, TsvReportIsSortedAndMachineReadable) {
  std::vector<Violation> vs = {
      {"b.cc", 9, "raw-new", "second"},
      {"a.cc", 3, "banned-rng", "first"},
  };
  EXPECT_EQ(FormatReport(vs),
            "a.cc\t3\tbanned-rng\tfirst\n"
            "b.cc\t9\traw-new\tsecond\n");
}

TEST(ReportTest, LintOutputIsSortedByFileLineRule) {
  const std::string src =
      "std::mt19937 b(1);\n"
      "int* p = new int(7);\n";
  std::vector<Violation> vs = LintSnippet("a.cc", src);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].line, 1u);
  EXPECT_EQ(vs[1].line, 2u);
}

TEST(JsonReportTest, EmitsTheDocumentedSchema) {
  std::vector<Violation> vs = {
      {"b.cc", 9, "raw-new", "second"},
      {"a.cc", 3, "banned-rng", "first \"quoted\"\tand\ttabbed"},
  };
  const std::string json = FormatJsonReport(vs, 151);
  EXPECT_TRUE(wf::testing::JsonChecker::Valid(json)) << json;
  // Sorted like the TSV, with the documented top-level keys.
  EXPECT_EQ(json.find("\"version\":2"), 1u);
  EXPECT_NE(json.find("\"files_scanned\":151"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_LT(json.find("a.cc"), json.find("b.cc"));
  // Escaping survives quotes and tabs in messages.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
}

TEST(JsonReportTest, EmptyRunIsStillAValidDocument) {
  const std::string json = FormatJsonReport({}, 0);
  EXPECT_TRUE(wf::testing::JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
}

// --- fix-point --------------------------------------------------------------

// The rules are only trustworthy if the tree they patrol is clean: every
// finding above was either fixed or deliberately suppressed, and every
// suppression still suppresses something. A regression in either direction
// (new violation, newly stale allow()) fails here — in-process, so the
// failure message carries the violations, not just an exit code.
TEST(FixPointTest, ShippedTreeScansClean) {
  namespace fs = std::filesystem;
  const fs::path root(WF_SOURCE_DIR);
  Engine engine;
  for (const char* dir : {"src", "tests"}) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root / dir, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      std::ifstream in(it->path(), std::ios::binary);
      ASSERT_TRUE(in) << it->path();
      std::ostringstream buf;
      buf << in.rdbuf();
      engine.AddFile({it->path().generic_string(), buf.str()});
    }
  }
  ASSERT_GT(engine.file_count(), 100u) << "tree scan found too few files";
  std::vector<Violation> vs = engine.Run();
  for (const Violation& v : vs) {
    ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message;
  }
  EXPECT_TRUE(vs.empty());
}

}  // namespace
}  // namespace wf::tools::wflint
