// Serving-layer suite: end-to-end deadline propagation (front door →
// Cluster::Search → per-service VinciBus calls), the gray-failure
// slow-node fault policy, and the overload-robust front door — admission
// control, load shedding, coalescing, per-tenant quotas, and the result
// cache with exact re-mine invalidation.
//
// The acceptance scenario at the end drives the front door at roughly 10x
// its configured capacity with 20% injected faults and one ramping slow
// node, and checks the robustness contract: sheds are honest (kUnavailable
// with retry-after, never a hang), no downstream handler ever runs past
// its deadline (the bus's tripwire counter stays zero), and once the chaos
// clears the same queries answer byte-identically to the unloaded run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "gtest/gtest.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "platform/cluster.h"
#include "platform/deadline.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "platform/vinci.h"
#include "serve/front_door.h"

namespace wf::serve {
namespace {

using ::wf::common::Status;
using ::wf::common::StatusCode;
using ::wf::platform::AppendDeadline;
using ::wf::platform::BatchIngestor;
using ::wf::platform::CallOptions;
using ::wf::platform::Cluster;
using ::wf::platform::Deadline;
using ::wf::platform::DeadlineFromRequest;
using ::wf::platform::EncodeMessage;
using ::wf::platform::FaultInjector;
using ::wf::platform::FaultPolicy;
using ::wf::platform::IngestAll;
using ::wf::platform::kDeadlineUsKey;
using ::wf::platform::SearchResult;
using ::wf::platform::SentimentQueryResult;
using ::wf::platform::SentimentQueryService;
using ::wf::platform::SlowNodePolicy;
using ::wf::platform::VinciBus;

// --- Deadline ----------------------------------------------------------------

TEST(DeadlineTest, BasicsRemainingAndCallBudget) {
  Deadline inf = Deadline::Infinite();
  EXPECT_TRUE(inf.infinite());
  EXPECT_FALSE(inf.expired());
  EXPECT_EQ(inf.RemainingUs(), UINT64_MAX);
  EXPECT_EQ(inf.CallBudgetUs(), 0u);  // 0 = "no deadline" to CallOptions

  Deadline soon = Deadline::After(60 * 1000 * 1000);  // a minute out
  EXPECT_FALSE(soon.infinite());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.RemainingUs(), 0u);
  EXPECT_LE(soon.RemainingUs(), 60u * 1000 * 1000);
  // Each accessor reads the clock, so allow a tick of skew between them.
  const uint64_t budget = soon.CallBudgetUs();
  const uint64_t remaining = soon.RemainingUs();
  EXPECT_LE(budget > remaining ? budget - remaining : remaining - budget,
            1000u);

  Deadline past = Deadline::AtUs(1);  // the distant monotonic past
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.RemainingUs(), 0u);
  EXPECT_EQ(past.CallBudgetUs(), 1u);  // smallest still-enforcing budget

  // A huge budget saturates instead of wrapping into the past.
  EXPECT_FALSE(Deadline::After(UINT64_MAX - 5).expired());
}

TEST(DeadlineTest, WireRoundTripAndMalformedFields) {
  Deadline d = Deadline::AtUs(123456789);
  std::vector<std::pair<std::string, std::string>> fields = {{"term", "x"}};
  AppendDeadline(d, &fields);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1].first, std::string(kDeadlineUsKey));
  Deadline parsed = DeadlineFromRequest(EncodeMessage(fields));
  EXPECT_EQ(parsed.expires_at_us(), d.expires_at_us());

  // Infinite deadlines leave the request untouched (byte-compat with
  // undeadlined traffic).
  std::vector<std::pair<std::string, std::string>> bare = {{"term", "x"}};
  AppendDeadline(Deadline::Infinite(), &bare);
  EXPECT_EQ(bare.size(), 1u);
  EXPECT_TRUE(DeadlineFromRequest(EncodeMessage(bare)).infinite());

  // A garbled stamp must not spuriously kill the call.
  EXPECT_TRUE(DeadlineFromRequest(
                  EncodeMessage({{kDeadlineUsKey, "not-a-number"}}))
                  .infinite());
  EXPECT_TRUE(DeadlineFromRequest(EncodeMessage({{kDeadlineUsKey, "12x"}}))
                  .infinite());
}

// --- Bus deadline gates ------------------------------------------------------

TEST(BusDeadlineTest, ExpiredDeadlineIsRejectedBeforeTheHandlerRuns) {
  VinciBus bus;
  obs::MetricsRegistry metrics;
  bus.AttachMetrics(&metrics);
  std::atomic<int> handler_runs{0};
  WF_CHECK_OK(bus.RegisterService("svc/echo", [&](const std::string&) {
    ++handler_runs;
    return std::string("ok=1");
  }));

  std::vector<std::pair<std::string, std::string>> fields = {{"q", "x"}};
  AppendDeadline(Deadline::AtUs(1), &fields);  // expired long ago
  auto response = bus.Call("svc/echo", EncodeMessage(fields));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_runs.load(), 0);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("vinci/deadline_rejected_total"), 1u);
  EXPECT_EQ(snap.CounterValue("vinci/deadline_rejected/svc/echo"), 1u);
  // The tripwire that proves the invariant: a handler never runs past its
  // deadline. Structurally zero while the gates stand.
  EXPECT_EQ(snap.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);

  // Without the field the same call goes straight through.
  auto plain = bus.Call("svc/echo", EncodeMessage({{"q", "x"}}));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(handler_runs.load(), 1);
}

TEST(BusDeadlineTest, DeadlineExpiringInFlightGatesBeforeTheHandler) {
  VinciBus bus;
  obs::MetricsRegistry metrics;
  bus.AttachMetrics(&metrics);
  std::atomic<int> handler_runs{0};
  WF_CHECK_OK(bus.RegisterService("svc/slow", [&](const std::string&) {
    ++handler_runs;
    return std::string("ok=1");
  }));
  // The simulated round trip outlasts the budget: the entry gate passes,
  // the post-latency gate must catch it.
  bus.SetSimulatedLatency(20000);

  std::vector<std::pair<std::string, std::string>> fields = {{"q", "x"}};
  AppendDeadline(Deadline::After(2000), &fields);
  auto response = bus.Call("svc/slow", EncodeMessage(fields));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_runs.load(), 0);
  EXPECT_EQ(metrics.Snapshot().CounterValue(
                "vinci/deadline_expired_handler_runs_total"),
            0u);
}

TEST(ClusterDeadlineTest, ExpiredDeadlineFailsEveryShardWithoutScattering) {
  Cluster cluster(4);
  SearchResult result = cluster.Search("anything", Deadline::AtUs(1));
  EXPECT_EQ(result.nodes_total, 4u);
  EXPECT_EQ(result.nodes_responded, 0u);
  EXPECT_EQ(result.failed_services.size(), 4u);
  EXPECT_FALSE(result.complete());
  obs::MetricsSnapshot snap = cluster.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("cluster/deadline_expired_searches_total"), 1u);
  EXPECT_EQ(snap.CounterValue("cluster/partial_searches_total"), 1u);
  // Nothing was dispatched: zero downstream work for a dead-on-arrival
  // budget.
  EXPECT_EQ(cluster.bus().CallCount("node/0/search"), 0u);
  EXPECT_EQ(snap.CounterValue("vinci/calls/node/0/search"), 0u);

  // An infinite deadline is the plain overload, byte-for-byte.
  SearchResult open = cluster.Search("anything");
  EXPECT_EQ(open.nodes_responded, 4u);
  EXPECT_TRUE(open.complete());
}

// --- Slow-node (gray failure) fault policy -----------------------------------

TEST(SlowNodeTest, LatencyRampIsDeterministicAndCapped) {
  FaultInjector a(11), b(11);
  a.SetPolicy("node/2/", SlowNodePolicy(100, 50, 300));
  b.SetPolicy("node/2/", SlowNodePolicy(100, 50, 300));

  std::vector<uint64_t> expected = {100, 150, 200, 250, 300, 300, 300};
  for (uint64_t want : expected) {
    FaultInjector::Decision da = a.Decide("node/2/search");
    FaultInjector::Decision db = b.Decide("node/2/search");
    EXPECT_EQ(da.action, FaultInjector::Decision::Action::kDeliver);
    EXPECT_EQ(da.extra_latency_us, want);
    EXPECT_EQ(db.extra_latency_us, want);  // same seed, same degradation
  }
  // Other services under the same injector are unaffected.
  EXPECT_EQ(a.Decide("node/0/search").extra_latency_us, 0u);
}

TEST(SlowNodeTest, JitterRidesOnTopOfTheRamp) {
  FaultInjector injector(5);
  injector.SetPolicy("node/1/", SlowNodePolicy(1000, 100, 2000, 50));
  for (int i = 0; i < 20; ++i) {
    uint64_t base = std::min<uint64_t>(1000 + 100 * static_cast<uint64_t>(i),
                                       2000);
    uint64_t got = injector.Decide("node/1/fetch").extra_latency_us;
    EXPECT_GE(got, base);
    EXPECT_LE(got, base + 50);
  }
}

// --- Front-door fixtures -----------------------------------------------------

// Two-subject corpus: Kodak documents and Xerox documents are disjoint, so
// cache-invalidation exactness is observable (dropping a Kodak doc must not
// evict the Xerox answer).
void BuildServingCluster(Cluster* cluster,
                         const lexicon::SentimentLexicon* lexicon,
                         const lexicon::PatternDatabase* patterns) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 8; ++i) {
    docs.emplace_back(
        "k-" + std::to_string(i),
        i % 2 == 0 ? "Kodak impresses everyone who tried it."
                   : "Lawsuits plague Kodak.");
  }
  for (int i = 0; i < 4; ++i) {
    docs.emplace_back(
        "x-" + std::to_string(i),
        i % 2 == 0 ? "Xerox impresses the whole industry."
                   : "Lawsuits plague Xerox.");
  }
  BatchIngestor ingestor("serving", docs);
  ASSERT_EQ(IngestAll(ingestor, *cluster), docs.size());
  cluster->DeployMiner([lexicon, patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(lexicon,
                                                                 patterns);
  });
  cluster->MineAndIndexAll();
}

struct ServingHarness {
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster{4};
  SentimentQueryService service{&cluster};
  std::unique_ptr<FrontDoor> door;

  explicit ServingHarness(FrontDoorOptions options = {}) {
    BuildServingCluster(&cluster, &lexicon, &patterns);
    door = std::make_unique<FrontDoor>(&service, &cluster, options);
    door->AttachMetrics(&cluster.metrics());
  }

  uint64_t Metric(const std::string& name) const {
    return cluster.metrics().Snapshot().CounterValue(name);
  }
};

// --- Quotas ------------------------------------------------------------------

TEST(FrontDoorQuotaTest, TokenBucketShedsWithHonestRetryAfter) {
  FrontDoorOptions options;
  options.default_quota = {/*tokens_per_second=*/0.1, /*burst=*/2.0};
  ServingHarness h(options);

  QueryRequest request;
  request.subject = "Kodak";
  request.tenant = "acme";
  EXPECT_TRUE(h.door->Query(request).status.ok());  // burst token 1
  EXPECT_TRUE(h.door->Query(request).status.ok());  // burst token 2

  QueryReply shed = h.door->Query(request);  // bucket empty
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.shed_reason, ShedReason::kQuotaExceeded);
  EXPECT_GT(shed.retry_after_us, 0u);  // when the next token lands
  EXPECT_EQ(h.Metric("serve/shed_quota_total"), 1u);

  // Quotas are per tenant: another tenant's bucket is untouched.
  request.tenant = "globex";
  EXPECT_TRUE(h.door->Query(request).status.ok());

  // An explicit override can lift the default entirely (rate 0 = no quota).
  h.door->SetTenantQuota("acme", {/*tokens_per_second=*/0.0, /*burst=*/1.0});
  request.tenant = "acme";
  EXPECT_TRUE(h.door->Query(request).status.ok());
}

// --- Admission & shedding ----------------------------------------------------

TEST(FrontDoorAdmissionTest, ShedsImmediatelyWhenTheQueueIsFull) {
  FrontDoorOptions options;
  options.max_concurrent = 1;
  options.interactive_queue_limit = 0;  // no waiting room at all
  options.batch_queue_limit = 0;
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);
  // Make the in-flight query slow enough to be observably in flight.
  h.cluster.bus().SetSimulatedLatency(30000);

  std::thread occupant([&] {
    QueryRequest request;
    request.subject = "Kodak";
    QueryReply reply = h.door->Query(request);
    EXPECT_TRUE(reply.status.ok());
  });
  // Wait until the occupant holds the execution slot.
  while (h.cluster.metrics().Snapshot().GaugeValue("serve/inflight") < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  QueryRequest request;
  request.subject = "Xerox";  // different key: no coalescing escape hatch
  QueryReply shed = h.door->Query(request);
  occupant.join();

  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.shed_reason, ShedReason::kQueueFull);
  EXPECT_EQ(shed.retry_after_us, options.shed_retry_after_us);
  EXPECT_GE(h.Metric("serve/shed_queue_full_total"), 1u);
  // The shed never reached the cluster: only the occupant's searches ran.
  EXPECT_EQ(h.Metric("cluster/searches_total"), 2u);
}

// --- Coalescing --------------------------------------------------------------

// Property: N concurrent identical queries cost exactly one upstream
// execution (two scatters: positive + negative), and every caller receives
// byte-identical payload — whether it coalesced onto the leader's flight
// or hit the result cache the leader filled.
TEST(FrontDoorCoalescingTest, ConcurrentIdenticalQueriesExecuteOnce) {
  ServingHarness h;
  h.cluster.bus().SetSimulatedLatency(5000);  // widen the overlap window

  const uint64_t searches_before = h.Metric("cluster/searches_total");
  constexpr int kCallers = 8;
  std::vector<QueryReply> replies(kCallers);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&h, &replies, &go, i] {
      while (!go.load()) {
        std::this_thread::yield();
      }
      QueryRequest request;
      request.subject = "Kodak";
      request.budget_us = 5 * 1000 * 1000;
      replies[static_cast<size_t>(i)] = h.door->Query(request);
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  // Exactly one execution: the two scatters of the leader, nothing else.
  EXPECT_EQ(h.Metric("cluster/searches_total") - searches_before, 2u);
  std::set<std::string> payloads;
  for (const QueryReply& reply : replies) {
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    payloads.insert(reply.payload);
  }
  EXPECT_EQ(payloads.size(), 1u);  // byte-identical across all callers
  // Everyone but the leader either coalesced or hit the cache.
  EXPECT_EQ(h.Metric("serve/coalesced_total") +
                h.Metric("serve/cache_hits_total"),
            static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(h.Metric("serve/requests_total"),
            static_cast<uint64_t>(kCallers));
}

// --- Result cache ------------------------------------------------------------

TEST(FrontDoorCacheTest, InvalidationIsExactToTheCoveredDocuments) {
  ServingHarness h;
  // The exact read set of the Kodak answer, from the query service itself.
  SentimentQueryResult kodak = h.service.Query("Kodak");
  ASSERT_TRUE(kodak.complete());
  ASSERT_FALSE(kodak.covered_docs.empty());

  QueryRequest kodak_request;
  kodak_request.subject = "Kodak";
  QueryRequest xerox_request;
  xerox_request.subject = "Xerox";

  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);  // fill
  EXPECT_FALSE(h.door->Query(xerox_request).cache_hit);
  EXPECT_TRUE(h.door->Query(kodak_request).cache_hit);  // cached now
  EXPECT_TRUE(h.door->Query(xerox_request).cache_hit);

  // Re-mining one Kodak document drops exactly the Kodak entry: the next
  // Kodak query re-executes, the Xerox answer stays cached.
  h.door->InvalidateDocument(kodak.covered_docs.front());
  EXPECT_GE(h.Metric("serve/cache_invalidated_total"), 1u);
  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);
  EXPECT_TRUE(h.door->Query(xerox_request).cache_hit);

  // A document no answer covered invalidates nothing.
  const uint64_t invalidated = h.Metric("serve/cache_invalidated_total");
  h.door->InvalidateDocument("no-such-doc");
  EXPECT_EQ(h.Metric("serve/cache_invalidated_total"), invalidated);
  EXPECT_TRUE(h.door->Query(kodak_request).cache_hit);

  // The blunt hook: a full re-mine clears everything.
  h.door->InvalidateAll();
  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);
  EXPECT_FALSE(h.door->Query(xerox_request).cache_hit);
}

TEST(FrontDoorCacheTest, DegradedResultsAreNeverCached) {
  ServingHarness h;
  FaultInjector injector(33);
  FaultPolicy down;
  down.fail_probability = 1.0;
  injector.SetPolicy("node/0/", down);
  h.cluster.bus().AttachFaultInjector(&injector);

  QueryRequest request;
  request.subject = "Kodak";
  QueryReply degraded = h.door->Query(request);
  EXPECT_TRUE(degraded.status.ok());  // partial answers are still answers
  EXPECT_FALSE(degraded.cache_hit);

  // Heal; the next query must re-execute (the degraded answer was not
  // cached) and serve the complete one.
  h.cluster.bus().AttachFaultInjector(nullptr);
  h.cluster.bus().ResetBreakers();
  QueryReply healed = h.door->Query(request);
  EXPECT_FALSE(healed.cache_hit);
  EXPECT_NE(healed.payload, degraded.payload);
  // Now the complete answer is cached.
  EXPECT_TRUE(h.door->Query(request).cache_hit);
  EXPECT_EQ(h.door->Query(request).payload, healed.payload);
}

// --- Bus endpoint ------------------------------------------------------------

TEST(FrontDoorBusTest, ServesAndShedsThroughTheVinciEndpoint) {
  FrontDoorOptions options;
  options.default_quota = {/*tokens_per_second=*/0.1, /*burst=*/1.0};
  ServingHarness h(options);
  WF_CHECK_OK(h.door->RegisterService());

  auto served = h.cluster.bus().Call(
      "app/front_door",
      EncodeMessage({{"subject", "Kodak"},
                     {"tenant", "acme"},
                     {"budget_us", "2000000"}}));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(platform::GetMessageField(*served, "code"), "0");
  EXPECT_EQ(platform::GetMessageField(*served, "shed"), "0");
  const std::string payload = platform::GetMessageField(*served, "payload");
  EXPECT_FALSE(payload.empty());
  EXPECT_EQ(platform::GetMessageField(payload, "subject"), "Kodak");
  EXPECT_EQ(platform::GetMessageField(payload, "complete"), "1");

  // Same tenant again: the one-token bucket is empty, and the shed comes
  // back over the wire with its reason and retry hint intact.
  auto shed = h.cluster.bus().Call(
      "app/front_door",
      EncodeMessage({{"subject", "Xerox"}, {"tenant", "acme"}}));
  ASSERT_TRUE(shed.ok());  // the *endpoint* succeeded; the query was shed
  EXPECT_EQ(platform::GetMessageField(*shed, "code"),
            std::to_string(static_cast<int>(StatusCode::kUnavailable)));
  EXPECT_EQ(platform::GetMessageField(*shed, "shed"),
            std::to_string(static_cast<int>(ShedReason::kQuotaExceeded)));
  EXPECT_GT(std::stoull(platform::GetMessageField(*shed, "retry_after_us")),
            0u);
  EXPECT_TRUE(platform::GetMessageField(*shed, "payload").empty());
  EXPECT_FALSE(platform::GetMessageField(*shed, "error").empty());
}

// --- Acceptance: 10x overload with faults and a slow node --------------------

TEST(ServingAcceptanceTest, OverloadShedsHonestlyAndHealsByteIdentical) {
  FrontDoorOptions options;
  options.max_concurrent = 2;
  options.interactive_queue_limit = 3;
  options.batch_queue_limit = 1;
  options.default_budget_us = 30000;  // 30ms end-to-end per query
  ServingHarness h(options);

  const std::vector<std::string> subjects = {"Kodak", "Xerox"};

  // Unloaded same-seed baseline, straight through the front door.
  std::vector<std::string> baseline;
  for (const std::string& subject : subjects) {
    QueryRequest request;
    request.subject = subject;
    request.budget_us = 10 * 1000 * 1000;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    baseline.push_back(reply.payload);
  }
  h.door->InvalidateAll();  // overload must not serve the warm baseline

  // Chaos on: 20% failures fleet-wide, one gray-failing node whose latency
  // ramps past the whole query budget, plus a base network cost.
  FaultInjector injector(2026);
  FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  injector.SetPolicy("node/2/", SlowNodePolicy(2000, 2000, 60000, 500));
  h.cluster.bus().AttachFaultInjector(&injector);
  h.cluster.bus().SetSimulatedLatency(500);

  // Open loop at ~10x capacity: 12 closed-loop callers against
  // max_concurrent=2 with 4 queue slots, each firing as fast as replies
  // come back.
  constexpr int kThreads = 12;
  constexpr int kQueriesPerThread = 15;
  std::vector<std::vector<QueryReply>> replies(kThreads);
  std::vector<std::vector<uint64_t>> elapsed_us(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &subjects, &replies, &elapsed_us, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        QueryRequest request;
        // Mostly-unique subjects: coalescing and the cache are so effective
        // at absorbing repeated queries that identical traffic never fills
        // the queues — the interesting overload is the uncacheable kind.
        request.subject =
            i % 5 == 0
                ? subjects[static_cast<size_t>(i) % subjects.size()]
                : "load-" + std::to_string(t) + "-" + std::to_string(i);
        request.tenant = "tenant-" + std::to_string(t % 3);
        request.priority = t % 4 == 0 ? Priority::kBatch
                                      : Priority::kInteractive;
        const uint64_t start = obs::MonotonicNowUs();
        QueryReply reply = h.door->Query(request);
        elapsed_us[static_cast<size_t>(t)].push_back(obs::MonotonicNowUs() -
                                                     start);
        replies[static_cast<size_t>(t)].push_back(std::move(reply));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  size_t ok = 0, shed = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < replies[static_cast<size_t>(t)].size(); ++i) {
      const QueryReply& reply = replies[static_cast<size_t>(t)][i];
      // Honest outcomes only: served, refused, or timed out — never a
      // mystery error, and (checked below) never a hang.
      const StatusCode code = reply.status.code();
      EXPECT_TRUE(code == StatusCode::kOk ||
                  code == StatusCode::kUnavailable ||
                  code == StatusCode::kDeadlineExceeded)
          << reply.status.ToString();
      if (code == StatusCode::kOk) ++ok;
      if (reply.shed_reason == ShedReason::kQueueFull) {
        ++shed;
        EXPECT_GT(reply.retry_after_us, 0u);  // backpressure, not a brush-off
      }
      // "Never hangs": every reply — served or shed — returned in bounded
      // time. The bound is deliberately loose (sanitizer-friendly); the
      // bench reports the real p99.
      EXPECT_LT(elapsed_us[static_cast<size_t>(t)][i], 5u * 1000 * 1000);
    }
  }
  EXPECT_GT(ok, 0u);    // overload still yields goodput
  EXPECT_GT(shed, 0u);  // and 10x load provably shed some of it

  // The core invariant, proved from metrics: no node handler ever executed
  // after its deadline expired, no matter how overloaded the queues got.
  obs::MetricsSnapshot during = h.cluster.metrics().Snapshot();
  EXPECT_EQ(during.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);
  EXPECT_GT(during.CounterValue("serve/requests_total"), 0u);

  // Chaos off: heal, then the same queries answer byte-identically to the
  // unloaded baseline — overload degraded service, never state.
  h.cluster.bus().AttachFaultInjector(nullptr);
  h.cluster.bus().SetSimulatedLatency(0);
  h.cluster.bus().ResetBreakers();
  h.door->InvalidateAll();
  for (size_t s = 0; s < subjects.size(); ++s) {
    QueryRequest request;
    request.subject = subjects[s];
    request.budget_us = 10 * 1000 * 1000;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    EXPECT_EQ(reply.payload, baseline[s]) << subjects[s];
  }
}

// --- Hedged scatter: byte-identity property ---------------------------------

// Property: with hedging on, every answer is byte-identical to the unhedged
// answer — across injector seeds and caller thread counts. The gray node
// here is slow (20ms) but well inside the 2s budget, so both paths must
// keep its shard; hedges may only add redundant work, never change bytes.
TEST(HedgingPropertyTest, AnswersAreByteIdenticalAcrossSeedsAndThreads) {
  FrontDoorOptions options;
  options.max_concurrent = 8;
  options.cache_entries = 0;  // every query really executes
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);
  h.cluster.bus().SetSimulatedLatency(300);

  const std::vector<std::string> subjects = {"Kodak", "Xerox"};
  auto slow_node = [] {
    return SlowNodePolicy(/*base=*/20000, /*ramp=*/0, /*cap=*/20000,
                          /*jitter=*/500);
  };

  // Unhedged baseline under the same slow-node policy the hedged runs see.
  FaultInjector baseline_injector(7);
  baseline_injector.SetPolicy("node/2/", slow_node());
  h.cluster.bus().AttachFaultInjector(&baseline_injector);
  std::map<std::string, std::string> baseline;
  for (const std::string& subject : subjects) {
    QueryRequest request;
    request.subject = subject;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    baseline[subject] = reply.payload;
  }
  h.cluster.bus().AttachFaultInjector(nullptr);  // quiesces stragglers

  platform::HedgeOptions hedge;
  hedge.default_delay_us = 2000;
  hedge.min_delay_us = 500;
  h.cluster.EnableHedging(hedge);

  for (uint64_t seed : {11u, 29u}) {
    for (int threads : {1, 4}) {
      FaultInjector injector(seed);
      injector.SetPolicy("node/2/", slow_node());
      h.cluster.bus().AttachFaultInjector(&injector);
      h.door->InvalidateAll();

      std::vector<std::vector<QueryReply>> replies(
          static_cast<size_t>(threads));
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&h, &subjects, &replies, t] {
          for (const std::string& subject : subjects) {
            QueryRequest request;
            request.subject = subject;
            replies[static_cast<size_t>(t)].push_back(h.door->Query(request));
          }
        });
      }
      for (std::thread& w : workers) w.join();
      for (int t = 0; t < threads; ++t) {
        for (size_t i = 0; i < subjects.size(); ++i) {
          const QueryReply& reply = replies[static_cast<size_t>(t)][i];
          ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
          EXPECT_EQ(reply.payload, baseline[subjects[i]])
              << "seed=" << seed << " threads=" << threads << " "
              << subjects[i];
        }
      }
      h.cluster.bus().AttachFaultInjector(nullptr);
      h.cluster.bus().ResetBreakers();
    }
  }

  obs::MetricsSnapshot snap = h.cluster.metrics().Snapshot();
  EXPECT_GT(snap.CounterValue("vinci/hedges_total"), 0u);
  // The tripwire: hedging must never let a handler run past its deadline.
  EXPECT_EQ(snap.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);
}

// --- Hedged scatter: breaker & retry neutrality ------------------------------

// A hedge attempt must neither feed the breaker's failure streak nor count
// as a retry. Every node/1 call sleeps 10ms and then corrupts, so each
// scatter contributes exactly one breaker-visible failure per node/1
// service (the primary) while the hedge — issued at ~1ms, failing at
// ~11ms — is breaker-silent. With the default failure_threshold of 5, four
// scatters must leave the circuit closed (a double-feeding hedge would
// have opened it during the third) and the fifth must open it.
TEST(HedgingBreakerTest, HedgesNeverDoubleCountBreakerOrRetries) {
  Cluster cluster(4);
  platform::HedgeOptions hedge;
  hedge.default_delay_us = 1000;
  hedge.min_delay_us = 200;
  hedge.max_delay_us = 4000;
  cluster.EnableHedging(hedge);

  FaultInjector injector(3);
  FaultPolicy corrupt;
  corrupt.corrupt_probability = 1.0;  // fails *after* the latency sleep
  corrupt.added_latency_us = 10000;
  injector.SetPolicy("node/1/", corrupt);
  cluster.bus().AttachFaultInjector(&injector);

  for (int i = 0; i < 4; ++i) {
    cluster.Search("anything", Deadline::After(500000));
  }
  EXPECT_EQ(cluster.bus().breaker_state("node/1/search"),
            platform::BreakerState::kClosed);
  obs::MetricsSnapshot mid = cluster.metrics().Snapshot();
  EXPECT_EQ(mid.CounterValue("vinci/breaker/open_total"), 0u);
  EXPECT_GT(mid.CounterValue("vinci/hedges_total"), 0u);

  cluster.Search("anything", Deadline::After(500000));
  EXPECT_EQ(cluster.bus().breaker_state("node/1/search"),
            platform::BreakerState::kOpen);
  obs::MetricsSnapshot after = cluster.metrics().Snapshot();
  // Exactly the unhedged sequence: each node/1 service (search, stats,
  // fetch — a search scatters to all of them) opened once, on its fifth
  // primary failure.
  EXPECT_EQ(after.CounterValue("vinci/breaker/open_total"), 3u);
  // And hedges are not retries: the scatter path never retries (its
  // per-call deadline does the failing), so every retry counter stays 0.
  for (const auto& [name, value] : after.counters) {
    if (name.rfind("vinci/retry_total/", 0) == 0) {
      EXPECT_EQ(value, 0u) << name;
    }
  }
  EXPECT_EQ(after.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);
  cluster.bus().AttachFaultInjector(nullptr);
}

// --- Hedged scatter: wins are counted ----------------------------------------

// One node answers slowly and corrupts half its replies; every corrupted
// primary leaves its slot open for the hedge — a fresh coin flip — to
// resolve. The win counter must move, and the tripwire must not.
TEST(HedgingWinTest, HedgeWinsAreCountedAndTripwireStaysZero) {
  Cluster cluster(4);
  platform::HedgeOptions hedge;
  hedge.default_delay_us = 1500;
  hedge.min_delay_us = 500;
  hedge.max_delay_us = 2500;  // always below the primary's injected sleep,
                              // so the hedge fires while it is in flight
  cluster.EnableHedging(hedge);

  FaultInjector injector(13);
  FaultPolicy flaky_slow;
  flaky_slow.corrupt_probability = 0.5;  // fails *after* the latency sleep
  flaky_slow.added_latency_us = 2000;
  flaky_slow.latency_jitter_us = 8000;
  injector.SetPolicy("node/1/", flaky_slow);
  cluster.bus().AttachFaultInjector(&injector);

  for (int i = 0; i < 20; ++i) {
    cluster.Search("anything", Deadline::After(200000));
    // Keep each service's failure streak at one so the breaker never
    // opens and instant rejections never preempt the hedge window.
    cluster.bus().ResetBreakers();
  }
  obs::MetricsSnapshot snap = cluster.metrics().Snapshot();
  EXPECT_GT(snap.CounterValue("vinci/hedges_total"), 0u);
  EXPECT_GT(snap.CounterValue("vinci/hedge_wins_total"), 0u);
  EXPECT_EQ(snap.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);
  cluster.bus().AttachFaultInjector(nullptr);
}

// --- AIMD adaptive concurrency -----------------------------------------------

TEST(FrontDoorAimdTest, LimitConvergesUnderOverloadAndRecovers) {
  FrontDoorOptions options;
  options.max_concurrent = 6;
  options.aimd.enabled = true;
  options.aimd.target_p99_us = 150000;
  options.aimd.window = 2;
  options.aimd.min_limit = 1;
  options.cache_entries = 0;  // unique work per query: every one samples
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);

  // Overload: every scatter call costs 10ms simulated network, pushing
  // end-to-end far past the 150ms target. Each completion window must cut
  // the limit multiplicatively until it hits the floor.
  h.cluster.bus().SetSimulatedLatency(10000);
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&h, t] {
      QueryRequest request;
      request.subject = "over-" + std::to_string(t);
      h.door->Query(request);
    });
  }
  for (std::thread& t : callers) t.join();
  obs::MetricsSnapshot overload = h.cluster.metrics().Snapshot();
  EXPECT_EQ(overload.GaugeValue("serve/concurrency_limit"), 1);
  EXPECT_GE(overload.CounterValue("serve/aimd_decrease_total"), 2u);

  // Recovery: fast backend again; additive increase must walk the limit
  // back up within a few windows.
  h.cluster.bus().SetSimulatedLatency(0);
  for (int i = 0; i < 10; ++i) {
    QueryRequest request;
    request.subject = "rec-" + std::to_string(i);
    QueryReply reply = h.door->Query(request);
    EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
  }
  obs::MetricsSnapshot recovered = h.cluster.metrics().Snapshot();
  EXPECT_GE(recovered.GaugeValue("serve/concurrency_limit"), 2);
  EXPECT_GT(recovered.CounterValue("serve/aimd_increase_total"), 0u);
}

// --- Queue-full retry-after: drain-time estimate -----------------------------

TEST(FrontDoorAdmissionTest, RetryAfterReflectsDrainTimeOnceWarm) {
  FrontDoorOptions options;
  options.max_concurrent = 1;
  options.interactive_queue_limit = 0;
  options.batch_queue_limit = 0;
  options.shed_retry_after_us = 777;  // recognizable cold-door constant
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);
  h.cluster.bus().SetSimulatedLatency(20000);

  auto occupy_and_shed = [&h](const std::string& occupant_subject,
                              const std::string& shed_subject) {
    std::thread occupant([&h, occupant_subject] {
      QueryRequest request;
      request.subject = occupant_subject;
      EXPECT_TRUE(h.door->Query(request).status.ok());
    });
    while (h.cluster.metrics().Snapshot().GaugeValue("serve/inflight") < 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    QueryRequest request;
    request.subject = shed_subject;
    QueryReply shed = h.door->Query(request);
    occupant.join();
    return shed;
  };

  // Cold door (no completion history): the configured constant.
  QueryReply cold = occupy_and_shed("Kodak", "Xerox");
  ASSERT_EQ(cold.shed_reason, ShedReason::kQueueFull);
  EXPECT_EQ(cold.retry_after_us, 777u);

  // Warm door: the hint is now a drain-time estimate from the observed
  // service time (tens of milliseconds here), not the constant.
  QueryReply warm = occupy_and_shed("Alpha", "Beta");
  ASSERT_EQ(warm.shed_reason, ShedReason::kQueueFull);
  EXPECT_NE(warm.retry_after_us, 777u);
  EXPECT_GE(warm.retry_after_us, 5000u);
  EXPECT_LE(warm.retry_after_us, 5u * 1000 * 1000);
}

// --- Acceptance: tail tolerance under a ramping slow node --------------------

// Extends the overload acceptance: with hedging enabled and 20% faults, a
// node whose latency ramps past the whole scatter deadline must not drag
// the scatter p99 beyond 2x the no-slow-node baseline, at no more than 15%
// extra calls; AIMD visibly converges and recovers; and once the chaos
// clears, answers are byte-identical to the unhedged pre-chaos baseline.
TEST(TailToleranceAcceptanceTest, SlowNodeRampStaysWithinTailBudget) {
  FrontDoorOptions options;
  options.max_concurrent = 4;
  options.aimd.enabled = true;
  options.aimd.target_p99_us = 150000;
  options.aimd.window = 2;
  options.aimd.min_limit = 1;
  options.cache_entries = 0;
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);

  const std::vector<std::string> subjects = {"Kodak", "Xerox"};

  // Unhedged, unloaded baseline answers.
  std::vector<std::string> baseline;
  for (const std::string& subject : subjects) {
    QueryRequest request;
    request.subject = subject;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    baseline.push_back(reply.payload);
  }

  platform::HedgeOptions hedge;
  hedge.default_delay_us = 4000;
  hedge.min_delay_us = 4000;  // above the healthy round trip: hedges are
                              // for stragglers, not steady-state traffic
  hedge.max_delay_us = 20000;
  hedge.suspect_margin_factor = 2.0;
  hedge.suspect_min_margin_us = 2000;
  h.cluster.EnableHedging(hedge);
  h.cluster.bus().SetSimulatedLatency(1500);

  FaultInjector injector(77);
  FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  h.cluster.bus().AttachFaultInjector(&injector);

  constexpr uint64_t kScatterDeadlineUs = 30000;
  constexpr int kWarmup = 16;
  constexpr int kMeasured = 50;
  auto measure = [&h](int scatters) {
    std::vector<uint64_t> wall_us;
    wall_us.reserve(static_cast<size_t>(scatters));
    for (int i = 0; i < scatters; ++i) {
      const uint64_t start = obs::MonotonicNowUs();
      h.cluster.Search("Kodak", Deadline::After(kScatterDeadlineUs));
      wall_us.push_back(obs::MonotonicNowUs() - start);
    }
    std::sort(wall_us.begin(), wall_us.end());
    return wall_us[static_cast<size_t>(scatters) * 99 / 100];
  };
  auto node_calls = [&h] {
    uint64_t total = 0;
    obs::MetricsSnapshot snap = h.cluster.metrics().Snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("vinci/calls/node/", 0) == 0) total += value;
    }
    return total;
  };

  // Phase A: faults only. Warm the scoreboard, then measure the baseline
  // scatter tail.
  measure(kWarmup);
  const uint64_t calls_a = node_calls();
  const uint64_t hedges_a =
      h.Metric("vinci/hedges_total");
  const uint64_t p99_base = measure(kMeasured);

  // Phase B: one node ramps to 60ms — twice the whole scatter deadline.
  // The warmup drives it to suspect with a latency EWMA past the deadline,
  // after which the gather abandons it at a fleet-derived margin instead
  // of riding every scatter to the deadline.
  injector.SetPolicy("node/2/", SlowNodePolicy(2000, 2000, 60000, 500));
  measure(kWarmup);
  const uint64_t p99_slow = measure(kMeasured);
  const uint64_t calls_b = node_calls();
  const uint64_t hedges_b = h.Metric("vinci/hedges_total");

  EXPECT_LE(p99_slow, 2 * p99_base)
      << "p99_base=" << p99_base << " p99_slow=" << p99_slow;
  // Hedging overhead across both measured+warmup windows: at most 15%
  // extra calls on top of the primaries.
  const uint64_t hedges = hedges_b - hedges_a;
  const uint64_t primaries = (calls_b - calls_a) - hedges;
  EXPECT_LE(hedges * 100, primaries * 15)
      << "hedges=" << hedges << " primaries=" << primaries;

  // AIMD converges under overload...
  h.cluster.bus().AttachFaultInjector(nullptr);  // quiesce chaos
  h.cluster.bus().SetSimulatedLatency(10000);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&h, t] {
      for (int i = 0; i < 2; ++i) {
        QueryRequest request;
        request.subject =
            "over-" + std::to_string(t) + "-" + std::to_string(i);
        h.door->Query(request);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  obs::MetricsSnapshot overload = h.cluster.metrics().Snapshot();
  EXPECT_LT(overload.GaugeValue("serve/concurrency_limit"),
            static_cast<int64_t>(options.max_concurrent));
  EXPECT_GT(overload.CounterValue("serve/aimd_decrease_total"), 0u);

  // ...and recovers once the backend is fast again.
  h.cluster.bus().SetSimulatedLatency(0);
  for (int i = 0; i < 10; ++i) {
    QueryRequest request;
    request.subject = "rec-" + std::to_string(i);
    EXPECT_TRUE(h.door->Query(request).status.ok());
  }
  obs::MetricsSnapshot recovered = h.cluster.metrics().Snapshot();
  EXPECT_GE(recovered.GaugeValue("serve/concurrency_limit"), 2);
  EXPECT_GT(recovered.CounterValue("serve/aimd_increase_total"), 0u);

  // The tripwire held through faults, the ramp, and the overload.
  EXPECT_EQ(recovered.CounterValue(
                "vinci/deadline_expired_handler_runs_total"),
            0u);

  // Healed — with hedging still enabled — the answers are byte-identical
  // to the unhedged pre-chaos baseline.
  h.cluster.bus().ResetBreakers();
  h.door->InvalidateAll();
  for (size_t s = 0; s < subjects.size(); ++s) {
    QueryRequest request;
    request.subject = subjects[s];
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    EXPECT_EQ(reply.payload, baseline[s]) << subjects[s];
  }
}

}  // namespace
}  // namespace wf::serve
