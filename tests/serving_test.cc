// Serving-layer suite: end-to-end deadline propagation (front door →
// Cluster::Search → per-service VinciBus calls), the gray-failure
// slow-node fault policy, and the overload-robust front door — admission
// control, load shedding, coalescing, per-tenant quotas, and the result
// cache with exact re-mine invalidation.
//
// The acceptance scenario at the end drives the front door at roughly 10x
// its configured capacity with 20% injected faults and one ramping slow
// node, and checks the robustness contract: sheds are honest (kUnavailable
// with retry-after, never a hang), no downstream handler ever runs past
// its deadline (the bus's tripwire counter stays zero), and once the chaos
// clears the same queries answer byte-identically to the unloaded run.

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "gtest/gtest.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "platform/cluster.h"
#include "platform/deadline.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "platform/vinci.h"
#include "serve/front_door.h"

namespace wf::serve {
namespace {

using ::wf::common::Status;
using ::wf::common::StatusCode;
using ::wf::platform::AppendDeadline;
using ::wf::platform::BatchIngestor;
using ::wf::platform::CallOptions;
using ::wf::platform::Cluster;
using ::wf::platform::Deadline;
using ::wf::platform::DeadlineFromRequest;
using ::wf::platform::EncodeMessage;
using ::wf::platform::FaultInjector;
using ::wf::platform::FaultPolicy;
using ::wf::platform::IngestAll;
using ::wf::platform::kDeadlineUsKey;
using ::wf::platform::SearchResult;
using ::wf::platform::SentimentQueryResult;
using ::wf::platform::SentimentQueryService;
using ::wf::platform::SlowNodePolicy;
using ::wf::platform::VinciBus;

// --- Deadline ----------------------------------------------------------------

TEST(DeadlineTest, BasicsRemainingAndCallBudget) {
  Deadline inf = Deadline::Infinite();
  EXPECT_TRUE(inf.infinite());
  EXPECT_FALSE(inf.expired());
  EXPECT_EQ(inf.RemainingUs(), UINT64_MAX);
  EXPECT_EQ(inf.CallBudgetUs(), 0u);  // 0 = "no deadline" to CallOptions

  Deadline soon = Deadline::After(60 * 1000 * 1000);  // a minute out
  EXPECT_FALSE(soon.infinite());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.RemainingUs(), 0u);
  EXPECT_LE(soon.RemainingUs(), 60u * 1000 * 1000);
  // Each accessor reads the clock, so allow a tick of skew between them.
  const uint64_t budget = soon.CallBudgetUs();
  const uint64_t remaining = soon.RemainingUs();
  EXPECT_LE(budget > remaining ? budget - remaining : remaining - budget,
            1000u);

  Deadline past = Deadline::AtUs(1);  // the distant monotonic past
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.RemainingUs(), 0u);
  EXPECT_EQ(past.CallBudgetUs(), 1u);  // smallest still-enforcing budget

  // A huge budget saturates instead of wrapping into the past.
  EXPECT_FALSE(Deadline::After(UINT64_MAX - 5).expired());
}

TEST(DeadlineTest, WireRoundTripAndMalformedFields) {
  Deadline d = Deadline::AtUs(123456789);
  std::vector<std::pair<std::string, std::string>> fields = {{"term", "x"}};
  AppendDeadline(d, &fields);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1].first, std::string(kDeadlineUsKey));
  Deadline parsed = DeadlineFromRequest(EncodeMessage(fields));
  EXPECT_EQ(parsed.expires_at_us(), d.expires_at_us());

  // Infinite deadlines leave the request untouched (byte-compat with
  // undeadlined traffic).
  std::vector<std::pair<std::string, std::string>> bare = {{"term", "x"}};
  AppendDeadline(Deadline::Infinite(), &bare);
  EXPECT_EQ(bare.size(), 1u);
  EXPECT_TRUE(DeadlineFromRequest(EncodeMessage(bare)).infinite());

  // A garbled stamp must not spuriously kill the call.
  EXPECT_TRUE(DeadlineFromRequest(
                  EncodeMessage({{kDeadlineUsKey, "not-a-number"}}))
                  .infinite());
  EXPECT_TRUE(DeadlineFromRequest(EncodeMessage({{kDeadlineUsKey, "12x"}}))
                  .infinite());
}

// --- Bus deadline gates ------------------------------------------------------

TEST(BusDeadlineTest, ExpiredDeadlineIsRejectedBeforeTheHandlerRuns) {
  VinciBus bus;
  obs::MetricsRegistry metrics;
  bus.AttachMetrics(&metrics);
  std::atomic<int> handler_runs{0};
  WF_CHECK_OK(bus.RegisterService("svc/echo", [&](const std::string&) {
    ++handler_runs;
    return std::string("ok=1");
  }));

  std::vector<std::pair<std::string, std::string>> fields = {{"q", "x"}};
  AppendDeadline(Deadline::AtUs(1), &fields);  // expired long ago
  auto response = bus.Call("svc/echo", EncodeMessage(fields));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_runs.load(), 0);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("vinci/deadline_rejected_total"), 1u);
  EXPECT_EQ(snap.CounterValue("vinci/deadline_rejected/svc/echo"), 1u);
  // The tripwire that proves the invariant: a handler never runs past its
  // deadline. Structurally zero while the gates stand.
  EXPECT_EQ(snap.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);

  // Without the field the same call goes straight through.
  auto plain = bus.Call("svc/echo", EncodeMessage({{"q", "x"}}));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(handler_runs.load(), 1);
}

TEST(BusDeadlineTest, DeadlineExpiringInFlightGatesBeforeTheHandler) {
  VinciBus bus;
  obs::MetricsRegistry metrics;
  bus.AttachMetrics(&metrics);
  std::atomic<int> handler_runs{0};
  WF_CHECK_OK(bus.RegisterService("svc/slow", [&](const std::string&) {
    ++handler_runs;
    return std::string("ok=1");
  }));
  // The simulated round trip outlasts the budget: the entry gate passes,
  // the post-latency gate must catch it.
  bus.SetSimulatedLatency(20000);

  std::vector<std::pair<std::string, std::string>> fields = {{"q", "x"}};
  AppendDeadline(Deadline::After(2000), &fields);
  auto response = bus.Call("svc/slow", EncodeMessage(fields));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(handler_runs.load(), 0);
  EXPECT_EQ(metrics.Snapshot().CounterValue(
                "vinci/deadline_expired_handler_runs_total"),
            0u);
}

TEST(ClusterDeadlineTest, ExpiredDeadlineFailsEveryShardWithoutScattering) {
  Cluster cluster(4);
  SearchResult result = cluster.Search("anything", Deadline::AtUs(1));
  EXPECT_EQ(result.nodes_total, 4u);
  EXPECT_EQ(result.nodes_responded, 0u);
  EXPECT_EQ(result.failed_services.size(), 4u);
  EXPECT_FALSE(result.complete());
  obs::MetricsSnapshot snap = cluster.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("cluster/deadline_expired_searches_total"), 1u);
  EXPECT_EQ(snap.CounterValue("cluster/partial_searches_total"), 1u);
  // Nothing was dispatched: zero downstream work for a dead-on-arrival
  // budget.
  EXPECT_EQ(cluster.bus().CallCount("node/0/search"), 0u);
  EXPECT_EQ(snap.CounterValue("vinci/calls/node/0/search"), 0u);

  // An infinite deadline is the plain overload, byte-for-byte.
  SearchResult open = cluster.Search("anything");
  EXPECT_EQ(open.nodes_responded, 4u);
  EXPECT_TRUE(open.complete());
}

// --- Slow-node (gray failure) fault policy -----------------------------------

TEST(SlowNodeTest, LatencyRampIsDeterministicAndCapped) {
  FaultInjector a(11), b(11);
  a.SetPolicy("node/2/", SlowNodePolicy(100, 50, 300));
  b.SetPolicy("node/2/", SlowNodePolicy(100, 50, 300));

  std::vector<uint64_t> expected = {100, 150, 200, 250, 300, 300, 300};
  for (uint64_t want : expected) {
    FaultInjector::Decision da = a.Decide("node/2/search");
    FaultInjector::Decision db = b.Decide("node/2/search");
    EXPECT_EQ(da.action, FaultInjector::Decision::Action::kDeliver);
    EXPECT_EQ(da.extra_latency_us, want);
    EXPECT_EQ(db.extra_latency_us, want);  // same seed, same degradation
  }
  // Other services under the same injector are unaffected.
  EXPECT_EQ(a.Decide("node/0/search").extra_latency_us, 0u);
}

TEST(SlowNodeTest, JitterRidesOnTopOfTheRamp) {
  FaultInjector injector(5);
  injector.SetPolicy("node/1/", SlowNodePolicy(1000, 100, 2000, 50));
  for (int i = 0; i < 20; ++i) {
    uint64_t base = std::min<uint64_t>(1000 + 100 * static_cast<uint64_t>(i),
                                       2000);
    uint64_t got = injector.Decide("node/1/fetch").extra_latency_us;
    EXPECT_GE(got, base);
    EXPECT_LE(got, base + 50);
  }
}

// --- Front-door fixtures -----------------------------------------------------

// Two-subject corpus: Kodak documents and Xerox documents are disjoint, so
// cache-invalidation exactness is observable (dropping a Kodak doc must not
// evict the Xerox answer).
void BuildServingCluster(Cluster* cluster,
                         const lexicon::SentimentLexicon* lexicon,
                         const lexicon::PatternDatabase* patterns) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 8; ++i) {
    docs.emplace_back(
        "k-" + std::to_string(i),
        i % 2 == 0 ? "Kodak impresses everyone who tried it."
                   : "Lawsuits plague Kodak.");
  }
  for (int i = 0; i < 4; ++i) {
    docs.emplace_back(
        "x-" + std::to_string(i),
        i % 2 == 0 ? "Xerox impresses the whole industry."
                   : "Lawsuits plague Xerox.");
  }
  BatchIngestor ingestor("serving", docs);
  ASSERT_EQ(IngestAll(ingestor, *cluster), docs.size());
  cluster->DeployMiner([lexicon, patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(lexicon,
                                                                 patterns);
  });
  cluster->MineAndIndexAll();
}

struct ServingHarness {
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster{4};
  SentimentQueryService service{&cluster};
  std::unique_ptr<FrontDoor> door;

  explicit ServingHarness(FrontDoorOptions options = {}) {
    BuildServingCluster(&cluster, &lexicon, &patterns);
    door = std::make_unique<FrontDoor>(&service, &cluster, options);
    door->AttachMetrics(&cluster.metrics());
  }

  uint64_t Metric(const std::string& name) const {
    return cluster.metrics().Snapshot().CounterValue(name);
  }
};

// --- Quotas ------------------------------------------------------------------

TEST(FrontDoorQuotaTest, TokenBucketShedsWithHonestRetryAfter) {
  FrontDoorOptions options;
  options.default_quota = {/*tokens_per_second=*/0.1, /*burst=*/2.0};
  ServingHarness h(options);

  QueryRequest request;
  request.subject = "Kodak";
  request.tenant = "acme";
  EXPECT_TRUE(h.door->Query(request).status.ok());  // burst token 1
  EXPECT_TRUE(h.door->Query(request).status.ok());  // burst token 2

  QueryReply shed = h.door->Query(request);  // bucket empty
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.shed_reason, ShedReason::kQuotaExceeded);
  EXPECT_GT(shed.retry_after_us, 0u);  // when the next token lands
  EXPECT_EQ(h.Metric("serve/shed_quota_total"), 1u);

  // Quotas are per tenant: another tenant's bucket is untouched.
  request.tenant = "globex";
  EXPECT_TRUE(h.door->Query(request).status.ok());

  // An explicit override can lift the default entirely (rate 0 = no quota).
  h.door->SetTenantQuota("acme", {/*tokens_per_second=*/0.0, /*burst=*/1.0});
  request.tenant = "acme";
  EXPECT_TRUE(h.door->Query(request).status.ok());
}

// --- Admission & shedding ----------------------------------------------------

TEST(FrontDoorAdmissionTest, ShedsImmediatelyWhenTheQueueIsFull) {
  FrontDoorOptions options;
  options.max_concurrent = 1;
  options.interactive_queue_limit = 0;  // no waiting room at all
  options.batch_queue_limit = 0;
  options.default_budget_us = 2 * 1000 * 1000;
  ServingHarness h(options);
  // Make the in-flight query slow enough to be observably in flight.
  h.cluster.bus().SetSimulatedLatency(30000);

  std::thread occupant([&] {
    QueryRequest request;
    request.subject = "Kodak";
    QueryReply reply = h.door->Query(request);
    EXPECT_TRUE(reply.status.ok());
  });
  // Wait until the occupant holds the execution slot.
  while (h.cluster.metrics().Snapshot().GaugeValue("serve/inflight") < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  QueryRequest request;
  request.subject = "Xerox";  // different key: no coalescing escape hatch
  QueryReply shed = h.door->Query(request);
  occupant.join();

  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.shed_reason, ShedReason::kQueueFull);
  EXPECT_EQ(shed.retry_after_us, options.shed_retry_after_us);
  EXPECT_GE(h.Metric("serve/shed_queue_full_total"), 1u);
  // The shed never reached the cluster: only the occupant's searches ran.
  EXPECT_EQ(h.Metric("cluster/searches_total"), 2u);
}

// --- Coalescing --------------------------------------------------------------

// Property: N concurrent identical queries cost exactly one upstream
// execution (two scatters: positive + negative), and every caller receives
// byte-identical payload — whether it coalesced onto the leader's flight
// or hit the result cache the leader filled.
TEST(FrontDoorCoalescingTest, ConcurrentIdenticalQueriesExecuteOnce) {
  ServingHarness h;
  h.cluster.bus().SetSimulatedLatency(5000);  // widen the overlap window

  const uint64_t searches_before = h.Metric("cluster/searches_total");
  constexpr int kCallers = 8;
  std::vector<QueryReply> replies(kCallers);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&h, &replies, &go, i] {
      while (!go.load()) {
        std::this_thread::yield();
      }
      QueryRequest request;
      request.subject = "Kodak";
      request.budget_us = 5 * 1000 * 1000;
      replies[static_cast<size_t>(i)] = h.door->Query(request);
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  // Exactly one execution: the two scatters of the leader, nothing else.
  EXPECT_EQ(h.Metric("cluster/searches_total") - searches_before, 2u);
  std::set<std::string> payloads;
  for (const QueryReply& reply : replies) {
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    payloads.insert(reply.payload);
  }
  EXPECT_EQ(payloads.size(), 1u);  // byte-identical across all callers
  // Everyone but the leader either coalesced or hit the cache.
  EXPECT_EQ(h.Metric("serve/coalesced_total") +
                h.Metric("serve/cache_hits_total"),
            static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(h.Metric("serve/requests_total"),
            static_cast<uint64_t>(kCallers));
}

// --- Result cache ------------------------------------------------------------

TEST(FrontDoorCacheTest, InvalidationIsExactToTheCoveredDocuments) {
  ServingHarness h;
  // The exact read set of the Kodak answer, from the query service itself.
  SentimentQueryResult kodak = h.service.Query("Kodak");
  ASSERT_TRUE(kodak.complete());
  ASSERT_FALSE(kodak.covered_docs.empty());

  QueryRequest kodak_request;
  kodak_request.subject = "Kodak";
  QueryRequest xerox_request;
  xerox_request.subject = "Xerox";

  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);  // fill
  EXPECT_FALSE(h.door->Query(xerox_request).cache_hit);
  EXPECT_TRUE(h.door->Query(kodak_request).cache_hit);  // cached now
  EXPECT_TRUE(h.door->Query(xerox_request).cache_hit);

  // Re-mining one Kodak document drops exactly the Kodak entry: the next
  // Kodak query re-executes, the Xerox answer stays cached.
  h.door->InvalidateDocument(kodak.covered_docs.front());
  EXPECT_GE(h.Metric("serve/cache_invalidated_total"), 1u);
  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);
  EXPECT_TRUE(h.door->Query(xerox_request).cache_hit);

  // A document no answer covered invalidates nothing.
  const uint64_t invalidated = h.Metric("serve/cache_invalidated_total");
  h.door->InvalidateDocument("no-such-doc");
  EXPECT_EQ(h.Metric("serve/cache_invalidated_total"), invalidated);
  EXPECT_TRUE(h.door->Query(kodak_request).cache_hit);

  // The blunt hook: a full re-mine clears everything.
  h.door->InvalidateAll();
  EXPECT_FALSE(h.door->Query(kodak_request).cache_hit);
  EXPECT_FALSE(h.door->Query(xerox_request).cache_hit);
}

TEST(FrontDoorCacheTest, DegradedResultsAreNeverCached) {
  ServingHarness h;
  FaultInjector injector(33);
  FaultPolicy down;
  down.fail_probability = 1.0;
  injector.SetPolicy("node/0/", down);
  h.cluster.bus().AttachFaultInjector(&injector);

  QueryRequest request;
  request.subject = "Kodak";
  QueryReply degraded = h.door->Query(request);
  EXPECT_TRUE(degraded.status.ok());  // partial answers are still answers
  EXPECT_FALSE(degraded.cache_hit);

  // Heal; the next query must re-execute (the degraded answer was not
  // cached) and serve the complete one.
  h.cluster.bus().AttachFaultInjector(nullptr);
  h.cluster.bus().ResetBreakers();
  QueryReply healed = h.door->Query(request);
  EXPECT_FALSE(healed.cache_hit);
  EXPECT_NE(healed.payload, degraded.payload);
  // Now the complete answer is cached.
  EXPECT_TRUE(h.door->Query(request).cache_hit);
  EXPECT_EQ(h.door->Query(request).payload, healed.payload);
}

// --- Bus endpoint ------------------------------------------------------------

TEST(FrontDoorBusTest, ServesAndShedsThroughTheVinciEndpoint) {
  FrontDoorOptions options;
  options.default_quota = {/*tokens_per_second=*/0.1, /*burst=*/1.0};
  ServingHarness h(options);
  WF_CHECK_OK(h.door->RegisterService());

  auto served = h.cluster.bus().Call(
      "app/front_door",
      EncodeMessage({{"subject", "Kodak"},
                     {"tenant", "acme"},
                     {"budget_us", "2000000"}}));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(platform::GetMessageField(*served, "code"), "0");
  EXPECT_EQ(platform::GetMessageField(*served, "shed"), "0");
  const std::string payload = platform::GetMessageField(*served, "payload");
  EXPECT_FALSE(payload.empty());
  EXPECT_EQ(platform::GetMessageField(payload, "subject"), "Kodak");
  EXPECT_EQ(platform::GetMessageField(payload, "complete"), "1");

  // Same tenant again: the one-token bucket is empty, and the shed comes
  // back over the wire with its reason and retry hint intact.
  auto shed = h.cluster.bus().Call(
      "app/front_door",
      EncodeMessage({{"subject", "Xerox"}, {"tenant", "acme"}}));
  ASSERT_TRUE(shed.ok());  // the *endpoint* succeeded; the query was shed
  EXPECT_EQ(platform::GetMessageField(*shed, "code"),
            std::to_string(static_cast<int>(StatusCode::kUnavailable)));
  EXPECT_EQ(platform::GetMessageField(*shed, "shed"),
            std::to_string(static_cast<int>(ShedReason::kQuotaExceeded)));
  EXPECT_GT(std::stoull(platform::GetMessageField(*shed, "retry_after_us")),
            0u);
  EXPECT_TRUE(platform::GetMessageField(*shed, "payload").empty());
  EXPECT_FALSE(platform::GetMessageField(*shed, "error").empty());
}

// --- Acceptance: 10x overload with faults and a slow node --------------------

TEST(ServingAcceptanceTest, OverloadShedsHonestlyAndHealsByteIdentical) {
  FrontDoorOptions options;
  options.max_concurrent = 2;
  options.interactive_queue_limit = 3;
  options.batch_queue_limit = 1;
  options.default_budget_us = 30000;  // 30ms end-to-end per query
  ServingHarness h(options);

  const std::vector<std::string> subjects = {"Kodak", "Xerox"};

  // Unloaded same-seed baseline, straight through the front door.
  std::vector<std::string> baseline;
  for (const std::string& subject : subjects) {
    QueryRequest request;
    request.subject = subject;
    request.budget_us = 10 * 1000 * 1000;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    baseline.push_back(reply.payload);
  }
  h.door->InvalidateAll();  // overload must not serve the warm baseline

  // Chaos on: 20% failures fleet-wide, one gray-failing node whose latency
  // ramps past the whole query budget, plus a base network cost.
  FaultInjector injector(2026);
  FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  injector.SetPolicy("node/2/", SlowNodePolicy(2000, 2000, 60000, 500));
  h.cluster.bus().AttachFaultInjector(&injector);
  h.cluster.bus().SetSimulatedLatency(500);

  // Open loop at ~10x capacity: 12 closed-loop callers against
  // max_concurrent=2 with 4 queue slots, each firing as fast as replies
  // come back.
  constexpr int kThreads = 12;
  constexpr int kQueriesPerThread = 15;
  std::vector<std::vector<QueryReply>> replies(kThreads);
  std::vector<std::vector<uint64_t>> elapsed_us(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &subjects, &replies, &elapsed_us, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        QueryRequest request;
        // Mostly-unique subjects: coalescing and the cache are so effective
        // at absorbing repeated queries that identical traffic never fills
        // the queues — the interesting overload is the uncacheable kind.
        request.subject =
            i % 5 == 0
                ? subjects[static_cast<size_t>(i) % subjects.size()]
                : "load-" + std::to_string(t) + "-" + std::to_string(i);
        request.tenant = "tenant-" + std::to_string(t % 3);
        request.priority = t % 4 == 0 ? Priority::kBatch
                                      : Priority::kInteractive;
        const uint64_t start = obs::MonotonicNowUs();
        QueryReply reply = h.door->Query(request);
        elapsed_us[static_cast<size_t>(t)].push_back(obs::MonotonicNowUs() -
                                                     start);
        replies[static_cast<size_t>(t)].push_back(std::move(reply));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  size_t ok = 0, shed = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < replies[static_cast<size_t>(t)].size(); ++i) {
      const QueryReply& reply = replies[static_cast<size_t>(t)][i];
      // Honest outcomes only: served, refused, or timed out — never a
      // mystery error, and (checked below) never a hang.
      const StatusCode code = reply.status.code();
      EXPECT_TRUE(code == StatusCode::kOk ||
                  code == StatusCode::kUnavailable ||
                  code == StatusCode::kDeadlineExceeded)
          << reply.status.ToString();
      if (code == StatusCode::kOk) ++ok;
      if (reply.shed_reason == ShedReason::kQueueFull) {
        ++shed;
        EXPECT_GT(reply.retry_after_us, 0u);  // backpressure, not a brush-off
      }
      // "Never hangs": every reply — served or shed — returned in bounded
      // time. The bound is deliberately loose (sanitizer-friendly); the
      // bench reports the real p99.
      EXPECT_LT(elapsed_us[static_cast<size_t>(t)][i], 5u * 1000 * 1000);
    }
  }
  EXPECT_GT(ok, 0u);    // overload still yields goodput
  EXPECT_GT(shed, 0u);  // and 10x load provably shed some of it

  // The core invariant, proved from metrics: no node handler ever executed
  // after its deadline expired, no matter how overloaded the queues got.
  obs::MetricsSnapshot during = h.cluster.metrics().Snapshot();
  EXPECT_EQ(during.CounterValue("vinci/deadline_expired_handler_runs_total"),
            0u);
  EXPECT_GT(during.CounterValue("serve/requests_total"), 0u);

  // Chaos off: heal, then the same queries answer byte-identically to the
  // unloaded baseline — overload degraded service, never state.
  h.cluster.bus().AttachFaultInjector(nullptr);
  h.cluster.bus().SetSimulatedLatency(0);
  h.cluster.bus().ResetBreakers();
  h.door->InvalidateAll();
  for (size_t s = 0; s < subjects.size(); ++s) {
    QueryRequest request;
    request.subject = subjects[s];
    request.budget_us = 10 * 1000 * 1000;
    QueryReply reply = h.door->Query(request);
    ASSERT_TRUE(reply.status.ok());
    EXPECT_EQ(reply.payload, baseline[s]) << subjects[s];
  }
}

}  // namespace
}  // namespace wf::serve
