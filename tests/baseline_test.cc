#include <gtest/gtest.h>

#include "baseline/collocation.h"
#include "baseline/reviewseer.h"
#include "tests/test_util.h"

namespace wf::baseline {
namespace {

using lexicon::Polarity;

// --- Collocation ------------------------------------------------------------------

class CollocationTest : public ::testing::Test {
 protected:
  Polarity Analyze(const std::string& sentence, const std::string& subject) {
    text::Tokenizer tokenizer;
    text::TokenStream tokens = tokenizer.Tokenize(sentence);
    text::SentenceSplitter splitter;
    std::vector<text::SentenceSpan> spans = splitter.Split(tokens);
    pos::PosTagger tagger;
    std::vector<pos::PosTag> tags = tagger.TagSentence(tokens, spans[0]);
    parse::SentenceAnalyzer analyzer;
    common::Arena arena;
    common::StringInterner interner(&arena);
    parse::SentenceParse parse =
        analyzer.Analyze(tokens, spans[0], tags, &interner);

    text::TokenStream subj = tokenizer.Tokenize(subject);
    size_t begin = 0, end = 0;
    for (size_t i = spans[0].begin_token;
         i + subj.size() <= spans[0].end_token; ++i) {
      bool match = true;
      for (size_t k = 0; k < subj.size(); ++k) {
        if (!common::EqualsIgnoreCase(tokens[i + k].text, subj[k].text)) {
          match = false;
        }
      }
      if (match) {
        begin = i;
        end = i + subj.size();
        break;
      }
    }
    CollocationAnalyzer colloc(&lexicon_);
    return colloc.AnalyzeSubject(tokens, parse, begin, end);
  }

  lexicon::SentimentLexicon lexicon_ =
      lexicon::SentimentLexicon::Embedded();
};

TEST_F(CollocationTest, PositiveCooccurrence) {
  EXPECT_EQ(Analyze("The camera takes excellent pictures.", "camera"),
            Polarity::kPositive);
}

TEST_F(CollocationTest, MajorityVoteWins) {
  EXPECT_EQ(Analyze("The terrible awful camera had one great day.",
                    "camera"),
            Polarity::kNegative);
}

TEST_F(CollocationTest, TieIsNeutral) {
  // One positive and one negative term: no majority.
  EXPECT_EQ(Analyze("The excellent lens has a terrible cap.", "lens"),
            Polarity::kNeutral);
}

TEST_F(CollocationTest, NoSentimentWordsIsNeutral) {
  EXPECT_EQ(Analyze("The camera arrived on Tuesday.", "camera"),
            Polarity::kNeutral);
}

TEST_F(CollocationTest, AssignsOffTargetSentiment) {
  // The known weakness: sentiment about the zoom lands on the battery.
  EXPECT_EQ(Analyze("The excellent zoom sits above the battery.",
                    "battery"),
            Polarity::kPositive);
}

TEST_F(CollocationTest, IgnoresNegation) {
  // No grammar: "not sharp" still counts "sharp" as positive.
  EXPECT_EQ(Analyze("The picture is not sharp.", "picture"),
            Polarity::kPositive);
}

// --- ReviewSeer --------------------------------------------------------------------

class ReviewSeerTest : public ::testing::Test {
 protected:
  static ReviewSeerClassifier Trained() {
    ReviewSeerClassifier::Options options;
    options.min_feature_count = 1;
    ReviewSeerClassifier c(options);
    for (int i = 0; i < 20; ++i) {
      c.AddTrainingDocument(
          "This camera is excellent. The pictures are sharp and the "
          "battery is great. I love it.",
          Polarity::kPositive);
      c.AddTrainingDocument(
          "This camera is terrible. The pictures are blurry and the "
          "battery is awful. I hate it.",
          Polarity::kNegative);
    }
    c.Train();
    return c;
  }
};

TEST_F(ReviewSeerTest, ClassifiesTrainingLikeText) {
  ReviewSeerClassifier c = Trained();
  EXPECT_EQ(c.Classify("The pictures are sharp and excellent."),
            Polarity::kPositive);
  EXPECT_EQ(c.Classify("The pictures are blurry and awful."),
            Polarity::kNegative);
}

TEST_F(ReviewSeerTest, NeutralMarginOnUnknownText) {
  ReviewSeerClassifier c = Trained();
  EXPECT_EQ(c.Classify("Quarterly refinery output rose."),
            Polarity::kNeutral);
}

TEST_F(ReviewSeerTest, LogOddsSignMatchesClass) {
  ReviewSeerClassifier c = Trained();
  EXPECT_GT(c.LogOdds("excellent sharp great"), 0.0);
  EXPECT_LT(c.LogOdds("terrible blurry awful"), 0.0);
}

TEST_F(ReviewSeerTest, VocabularyBuilt) {
  ReviewSeerClassifier c = Trained();
  EXPECT_GT(c.vocabulary_size(), 10u);
  EXPECT_TRUE(c.trained());
}

TEST_F(ReviewSeerTest, BigramsCaptureLocalContext) {
  ReviewSeerClassifier::Options options;
  options.min_feature_count = 1;
  options.use_bigrams = true;
  ReviewSeerClassifier with(options);
  options.use_bigrams = false;
  ReviewSeerClassifier without(options);
  for (int i = 0; i < 10; ++i) {
    for (ReviewSeerClassifier* c : {&with, &without}) {
      c->AddTrainingDocument("the battery lasts forever",
                             Polarity::kPositive);
      c->AddTrainingDocument("the battery dies forever",
                             Polarity::kNegative);
    }
  }
  with.Train();
  without.Train();
  // The bigram model separates "battery lasts" from "battery dies".
  EXPECT_GT(with.LogOdds("battery lasts"),
            without.LogOdds("battery lasts"));
}

TEST_F(ReviewSeerTest, FrequencyCutoffDropsRareFeatures) {
  ReviewSeerClassifier::Options options;
  options.min_feature_count = 5;
  ReviewSeerClassifier c(options);
  for (int i = 0; i < 10; ++i) {
    c.AddTrainingDocument("good good good", Polarity::kPositive);
    c.AddTrainingDocument("bad bad bad", Polarity::kNegative);
  }
  c.AddTrainingDocument("hapaxlegomenon", Polarity::kPositive);
  c.Train();
  // The singleton word contributes nothing.
  EXPECT_NEAR(c.LogOdds("hapaxlegomenon"), c.LogOdds(""), 1e-9);
}

}  // namespace
}  // namespace wf::baseline
