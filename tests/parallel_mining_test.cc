// Parallel shard mining: the MineExecutor pool, the shared
// linguistic-analysis cache, and the determinism contract — a parallel
// ProcessStore/MineAndIndex sweep must be byte-identical to the sequential
// one at every thread count, including under injected miner faults and
// after a crash/Recover() cycle.
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "core/analysis.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "platform/cluster.h"
#include "platform/data_store.h"
#include "platform/entity.h"
#include "platform/mine_executor.h"
#include "platform/miner_framework.h"
#include "platform/sentiment_miner_plugin.h"

namespace wf {
namespace {

using ::wf::common::Status;
using ::wf::core::AnalysisCache;
using ::wf::core::AnalysisCacheOptions;
using ::wf::platform::AdHocSentimentMinerPlugin;
using ::wf::platform::Cluster;
using ::wf::platform::DataStore;
using ::wf::platform::Entity;
using ::wf::platform::EntityMiner;
using ::wf::platform::MineContext;
using ::wf::platform::MineExecutor;
using ::wf::platform::MineExecutorOptions;
using ::wf::platform::MinerPipeline;
using ::wf::platform::SentenceBoundaryMiner;
using ::wf::platform::TokenStatsMiner;

// A fresh directory under /tmp, removed on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_("/tmp/wf_parallel_mining_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  auto content = common::ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  return content.ok() ? content.value() : std::string();
}

const lexicon::SentimentLexicon& Lexicon() {
  static const lexicon::SentimentLexicon* const lexicon =
      new lexicon::SentimentLexicon(lexicon::SentimentLexicon::Embedded());
  return *lexicon;
}

const lexicon::PatternDatabase& Patterns() {
  static const lexicon::PatternDatabase* const patterns =
      new lexicon::PatternDatabase(lexicon::PatternDatabase::Embedded());
  return *patterns;
}

// Sentiment-rich bodies so the ad-hoc miner produces annotations and
// conceptual tokens whose ordering the byte-comparisons would catch.
Entity MakeEntity(size_t i) {
  static const char* const kBodies[] = {
      "The ThinkPad battery is excellent. The keyboard feels great, but the "
      "screen is disappointing in Paris.",
      "I hate the noisy fan. The camera takes beautiful pictures and the "
      "battery life is amazing.",
      "Service in London was terrible. However, the support team is "
      "wonderful and the price is fair.",
      "The new phone is not bad at all. Its display is stunning and the "
      "speaker sounds awful.",
  };
  Entity e(common::StrFormat("doc-%03zu", i), "review");
  e.SetBody(common::StrFormat("Review %zu. %s", i,
                              kBodies[i % (sizeof(kBodies) / sizeof(kBodies[0]))]));
  e.SetField("date", common::StrFormat("2004-%02zu-10", 1 + i % 12));
  return e;
}

void FillStore(DataStore* store, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(store->Put(MakeEntity(i)).ok());
  }
}

// Fails deterministically for ~20% of entities, keyed on the entity id so
// the failure set is independent of processing order and thread count.
class FlakyMiner : public EntityMiner {
 public:
  std::string name() const override { return "flaky"; }
  common::Status Process(Entity& entity) override {
    if (common::Fnv1a64(entity.id()) % 5 == 0) {
      return Status::Internal("injected mining fault: " + entity.id());
    }
    entity.SetField("flaky_ok", "1");
    return Status::Ok();
  }
};

// Cross-document state: must force the pipeline's sequential fallback.
class OrderDependentMiner : public EntityMiner {
 public:
  std::string name() const override { return "order_dependent"; }
  bool parallel_safe() const override { return false; }
  common::Status Process(Entity& entity) override {
    // Unsynchronized on purpose: a racy parallel sweep would corrupt the
    // count (and trip TSan); the sequential fallback keeps it exact.
    ++seen_;
    entity.SetField("seq", common::StrFormat("%zu", seen_));
    return Status::Ok();
  }
  size_t seen() const { return seen_; }

 private:
  size_t seen_ = 0;
};

// --- MineExecutor -----------------------------------------------------------

TEST(MineExecutorTest, RunsEveryIndexExactlyOnce) {
  MineExecutor pool(MineExecutorOptions{.threads = 4});
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> runs(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { runs[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(runs[i].load(), 1) << "index " << i;
  }
}

TEST(MineExecutorTest, ZeroCountReturnsImmediately) {
  MineExecutor pool(MineExecutorOptions{.threads = 2});
  pool.ParallelFor(0, [](size_t) { FAIL() << "task ran for empty batch"; });
}

TEST(MineExecutorTest, NestedParallelForDoesNotDeadlock) {
  // A task that scatters again must drain its own nested batch even when
  // every pool worker is already busy with the outer batch.
  MineExecutor pool(MineExecutorOptions{.threads = 2});
  std::atomic<size_t> inner_runs{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(32, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 8u * 32u);
}

TEST(MineExecutorTest, ResolveThreadsClampsToSupportedRange) {
  EXPECT_GE(MineExecutor::ResolveThreads(0), 1u);   // hardware, at least 1
  EXPECT_LE(MineExecutor::ResolveThreads(0), 16u);
  EXPECT_EQ(MineExecutor::ResolveThreads(5), 5u);
  EXPECT_EQ(MineExecutor::ResolveThreads(100), 16u);
}

TEST(MineExecutorTest, PoolMetricsSettleWhenQuiescent) {
  obs::MetricsRegistry metrics;
  MineExecutor pool(MineExecutorOptions{.threads = 3});
  pool.AttachMetrics(&metrics);
  pool.ParallelFor(64, [](size_t) {});
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.GaugeValue("mine_executor/pool_threads"), 3);
  EXPECT_EQ(snap.GaugeValue("mine_executor/busy_workers"), 0);
  const obs::HistogramSnapshot* latency =
      snap.FindHistogram("mine_executor/batch_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count, 0u);
}

// --- AnalysisCache ----------------------------------------------------------

TEST(AnalysisCacheTest, HitReturnsTheSharedArtifact) {
  obs::MetricsRegistry metrics;
  AnalysisCache cache;
  cache.AttachMetrics(&metrics);
  const std::string body = "The battery is excellent. The screen is bad.";
  auto first = cache.Analyze("doc-1", body);
  auto second = cache.Analyze("doc-1", body);
  EXPECT_EQ(first.get(), second.get());  // hit serves the same artifact
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("analysis_cache/misses_total"), 1u);
  EXPECT_EQ(snap.CounterValue("analysis_cache/hits_total"), 1u);
  EXPECT_EQ(snap.GaugeValue("analysis_cache/entries"), 1);
}

TEST(AnalysisCacheTest, ArtifactMatchesDirectComputation) {
  const std::string body =
      "The ThinkPad is wonderful. I hate the fan noise in London.";
  AnalysisCache cache;
  auto cached = cache.Analyze("doc-1", body);
  auto direct = core::AnalyzeDocument(body);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->tokens.size(), direct->tokens.size());
  ASSERT_EQ(cached->sentences.size(), direct->sentences.size());
  ASSERT_EQ(cached->sentence_tags.size(), direct->sentence_tags.size());
  for (size_t s = 0; s < cached->sentence_tags.size(); ++s) {
    EXPECT_EQ(cached->sentence_tags[s], direct->sentence_tags[s]);
  }
  EXPECT_EQ(cached->sentence_clauses.size(), direct->sentence_clauses.size());
  EXPECT_GT(cached->ApproxBytes(), sizeof(core::LinguisticAnalysis));
}

TEST(AnalysisCacheTest, StaleBodyIsRecomputedNotServed) {
  obs::MetricsRegistry metrics;
  AnalysisCache cache;
  cache.AttachMetrics(&metrics);
  auto old_artifact = cache.Analyze("doc-1", "The battery is excellent.");
  auto new_artifact = cache.Analyze("doc-1", "Now the battery is terrible.");
  EXPECT_NE(old_artifact.get(), new_artifact.get());
  // Old handle stays readable after invalidation.
  EXPECT_GT(old_artifact->tokens.size(), 0u);
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("analysis_cache/hits_total"), 0u);
  EXPECT_EQ(snap.CounterValue("analysis_cache/misses_total"), 2u);
  EXPECT_EQ(snap.GaugeValue("analysis_cache/entries"), 1);
}

TEST(AnalysisCacheTest, CapacityIsBoundedWithLruEviction) {
  obs::MetricsRegistry metrics;
  AnalysisCache cache(AnalysisCacheOptions{.max_entries = 4, .stripes = 1});
  cache.AttachMetrics(&metrics);
  for (size_t i = 0; i < 10; ++i) {
    cache.Analyze(common::StrFormat("doc-%zu", i), "Some body text here.");
  }
  EXPECT_EQ(cache.size(), 4u);
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("analysis_cache/evictions_total"), 6u);
  EXPECT_EQ(snap.GaugeValue("analysis_cache/entries"), 4);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(metrics.Snapshot().GaugeValue("analysis_cache/entries"), 0);
}

TEST(AnalysisCacheTest, ZeroCapacityDisablesCaching) {
  AnalysisCache cache(AnalysisCacheOptions{.max_entries = 0});
  auto a = cache.Analyze("doc-1", "The battery is excellent.");
  auto b = cache.Analyze("doc-1", "The battery is excellent.");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 0u);
}

// --- Deterministic parallel ProcessStore ------------------------------------

struct SweepResult {
  std::string store_bytes;
  std::string metrics_text;  // deterministic export (timings excluded)
  std::vector<MinerPipeline::MinerStats> stats;
};

// Builds a store + pipeline (optionally with the flaky miner), sweeps it
// with `threads` workers (0 = sequential path, no executor), and returns
// everything the determinism contract promises is thread-count independent.
SweepResult SweepOnce(size_t count, size_t threads, bool with_flaky,
                      const std::string& tag) {
  ScopedTempDir dir("sweep_" + tag);
  DataStore store;
  FillStore(&store, count);

  obs::MetricsRegistry metrics;
  AnalysisCache cache;
  MinerPipeline pipeline;
  pipeline.AttachMetrics(&metrics);
  cache.AttachMetrics(&metrics);
  pipeline.SetAnalysisProvider(&cache);
  pipeline.AddMiner(std::make_unique<SentenceBoundaryMiner>());
  pipeline.AddMiner(std::make_unique<TokenStatsMiner>());
  if (with_flaky) pipeline.AddMiner(std::make_unique<FlakyMiner>());
  pipeline.AddMiner(
      std::make_unique<AdHocSentimentMinerPlugin>(&Lexicon(), &Patterns()));

  if (threads == 0) {
    pipeline.ProcessStore(store);
  } else {
    MineExecutor pool(MineExecutorOptions{.threads = threads});
    pipeline.ProcessStore(store, &pool);
  }

  SweepResult result;
  EXPECT_TRUE(store.Save(dir.File("store.snap")).ok());
  result.store_bytes = ReadAll(dir.File("store.snap"));
  result.metrics_text =
      metrics.Snapshot().ExportText({.include_timings = false});
  result.stats = pipeline.Stats();
  return result;
}

void ExpectSameSweep(const SweepResult& base, const SweepResult& other,
                     const std::string& label) {
  EXPECT_EQ(base.store_bytes, other.store_bytes) << label;
  EXPECT_EQ(base.metrics_text, other.metrics_text) << label;
  ASSERT_EQ(base.stats.size(), other.stats.size()) << label;
  for (size_t i = 0; i < base.stats.size(); ++i) {
    EXPECT_EQ(base.stats[i].entities, other.stats[i].entities) << label;
    EXPECT_EQ(base.stats[i].failures, other.stats[i].failures) << label;
    EXPECT_EQ(base.stats[i].consecutive_failures,
              other.stats[i].consecutive_failures)
        << label;
    EXPECT_EQ(base.stats[i].quarantined, other.stats[i].quarantined) << label;
  }
}

TEST(ParallelSweepDeterminismTest, OutputIsByteIdenticalAtEveryThreadCount) {
  const SweepResult sequential = SweepOnce(40, 0, /*with_flaky=*/false, "seq");
  EXPECT_FALSE(sequential.store_bytes.empty());
  for (size_t threads : {1, 2, 4, 8}) {
    ExpectSameSweep(sequential,
                    SweepOnce(40, threads, /*with_flaky=*/false,
                              common::StrFormat("t%zu", threads)),
                    common::StrFormat("threads=%zu", threads));
  }
}

TEST(ParallelSweepDeterminismTest, HoldsUnderTwentyPercentMinerFaults) {
  const SweepResult sequential =
      SweepOnce(40, 0, /*with_flaky=*/true, "flaky_seq");
  // The fault injection actually fired (~20% of 40 ids).
  bool saw_failures = false;
  for (const auto& s : sequential.stats) {
    if (s.name == "flaky" && s.failures > 0) saw_failures = true;
  }
  EXPECT_TRUE(saw_failures);
  for (size_t threads : {1, 2, 4, 8}) {
    ExpectSameSweep(sequential,
                    SweepOnce(40, threads, /*with_flaky=*/true,
                              common::StrFormat("flaky_t%zu", threads)),
                    common::StrFormat("flaky threads=%zu", threads));
  }
}

TEST(ParallelSweepDeterminismTest,
     NonParallelSafeMinerForcesSequentialFallback) {
  DataStore store;
  FillStore(&store, 24);
  MinerPipeline pipeline;
  auto order_miner = std::make_unique<OrderDependentMiner>();
  const OrderDependentMiner* raw = order_miner.get();
  pipeline.AddMiner(std::move(order_miner));
  MineExecutor pool(MineExecutorOptions{.threads = 8});
  pipeline.ProcessStore(store, &pool);
  // Unsynchronized counter is exact: the sweep really was sequential.
  EXPECT_EQ(raw->seen(), 24u);
  // And sequential means sorted-id order: doc-000 was first.
  auto first = store.Get("doc-000");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->GetField("seq"), "1");
}

TEST(ParallelSweepDeterminismTest, QuarantineTripsIdenticallyWhenParallel) {
  // An always-failing miner must cross the quarantine threshold during the
  // parallel sweep exactly as it does sequentially (replayed in canonical
  // order), and be skipped by the next sweep.
  class AlwaysFailMiner : public EntityMiner {
   public:
    std::string name() const override { return "always_fail"; }
    common::Status Process(Entity&) override {
      return Status::Internal("broken plugin");
    }
  };
  auto run = [](MineExecutor* pool) {
    DataStore store;
    FillStore(&store, 20);
    MinerPipeline pipeline;
    pipeline.SetQuarantineThreshold(4);
    pipeline.AddMiner(std::make_unique<AlwaysFailMiner>());
    pipeline.AddMiner(std::make_unique<TokenStatsMiner>());
    pipeline.ProcessStore(store, pool);
    return pipeline.Stats();
  };
  MineExecutor pool(MineExecutorOptions{.threads = 8});
  std::vector<MinerPipeline::MinerStats> sequential = run(nullptr);
  std::vector<MinerPipeline::MinerStats> parallel = run(&pool);
  ASSERT_EQ(sequential.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_TRUE(sequential[0].quarantined);
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].entities, parallel[i].entities);
    EXPECT_EQ(sequential[i].failures, parallel[i].failures);
    EXPECT_EQ(sequential[i].quarantined, parallel[i].quarantined);
  }
}

// --- Cluster-level determinism ----------------------------------------------

void DeploySentimentMiner(Cluster* cluster) {
  cluster->DeployMiner([] {
    return std::make_unique<AdHocSentimentMinerPlugin>(&Lexicon(),
                                                       &Patterns());
  });
}

// Saves every node's store and index snapshots and concatenates the bytes:
// one string that any scheduling difference anywhere in the cluster's
// mining or indexing would perturb.
std::string ClusterFingerprint(Cluster* cluster, const ScopedTempDir& dir,
                               const std::string& tag) {
  std::string bytes;
  for (size_t i = 0; i < cluster->node_count(); ++i) {
    const std::string store_path =
        dir.File(common::StrFormat("%s-n%zu.store", tag.c_str(), i));
    const std::string index_path =
        dir.File(common::StrFormat("%s-n%zu.idx", tag.c_str(), i));
    EXPECT_TRUE(cluster->node(i).store().Save(store_path).ok());
    EXPECT_TRUE(cluster->node(i).index().Save(index_path).ok());
    bytes += ReadAll(store_path);
    bytes += ReadAll(index_path);
  }
  return bytes;
}

TEST(ClusterParallelMiningTest, MineAndIndexAllIsThreadCountIndependent) {
  ScopedTempDir dir("cluster_det");
  auto fingerprint = [&dir](size_t threads) {
    Cluster cluster(3);
    DeploySentimentMiner(&cluster);
    cluster.ConfigureMining(MineExecutorOptions{.threads = threads});
    for (size_t i = 0; i < 24; ++i) {
      EXPECT_TRUE(cluster.Ingest(MakeEntity(i)).ok()) << i;
    }
    cluster.MineAndIndexAll();
    return ClusterFingerprint(&cluster, dir,
                              common::StrFormat("t%zu", threads));
  };
  const std::string baseline = fingerprint(1);
  EXPECT_FALSE(baseline.empty());
  for (size_t threads : {2, 4, 8}) {
    EXPECT_EQ(baseline, fingerprint(threads)) << "threads=" << threads;
  }
}

TEST(ClusterParallelMiningTest, SentimentSearchAgreesAcrossThreadCounts) {
  auto docs_for = [](size_t threads, const std::string& term) {
    Cluster cluster(2);
    DeploySentimentMiner(&cluster);
    cluster.ConfigureMining(MineExecutorOptions{.threads = threads});
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_TRUE(cluster.Ingest(MakeEntity(i)).ok());
    }
    cluster.MineAndIndexAll();
    return cluster.Search(term).docs;
  };
  for (const char* term : {"sent/+/battery", "battery", "excellent"}) {
    std::vector<std::string> sequential = docs_for(1, term);
    EXPECT_EQ(sequential, docs_for(8, term)) << term;
  }
}

TEST(ClusterParallelMiningTest, NodeSharesArtifactBetweenMiningAndIndexing) {
  Cluster cluster(1);
  DeploySentimentMiner(&cluster);
  cluster.ConfigureMining(MineExecutorOptions{.threads = 4});
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.Ingest(MakeEntity(i)).ok());
  }
  cluster.MineAndIndexAll();
  obs::MetricsSnapshot snap = cluster.node(0).metrics().Snapshot();
  // Mining computed each artifact once (miss); sorted-order indexing then
  // reused it (hit) instead of tokenizing again.
  EXPECT_EQ(snap.CounterValue("analysis_cache/misses_total"), 8u);
  EXPECT_EQ(snap.CounterValue("analysis_cache/hits_total"), 8u);
  EXPECT_EQ(snap.GaugeValue("analysis_cache/entries"), 8);
}

TEST(ClusterParallelMiningTest, CrashRecoveryReminesToIdenticalBytes) {
  ScopedTempDir snapshots("crash_snapshots");

  // Both clusters run two full mining sweeps over the same ingests; the
  // parallel one additionally loses node state to a crash and rebuilds it
  // from checkpoint + WAL between the sweeps. Same bytes expected anyway.
  auto run = [&](const std::string& tag, size_t threads, bool crash) {
    ScopedTempDir wal_dir("crash_" + tag);
    Cluster cluster(2);
    DeploySentimentMiner(&cluster);
    cluster.ConfigureMining(MineExecutorOptions{.threads = threads});
    EXPECT_TRUE(
        cluster.EnableDurability({.dir = wal_dir.path()}, nullptr).ok());
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_TRUE(cluster.Ingest(MakeEntity(i)).ok());
    }
    cluster.MineAndIndexAll();
    EXPECT_TRUE(cluster.CheckpointAll().ok());
    if (crash) {
      EXPECT_TRUE(cluster.CrashNode(0).ok());
      EXPECT_TRUE(cluster.RestartNode(0).ok());
    }
    cluster.MineAndIndexAll();
    return ClusterFingerprint(&cluster, snapshots, tag);
  };

  const std::string reference = run("ref", 1, /*crash=*/false);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(reference, run("crashed", 8, /*crash=*/true));
}

}  // namespace
}  // namespace wf
