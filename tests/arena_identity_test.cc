// Byte-identity for the arena-backed analysis front half: the mining sweep
// over a seeded corpus must produce exactly the bytes the pre-arena
// implementation produced (golden fingerprint captured before Token/
// LinguisticAnalysis moved onto the bump arena), at every thread count.
// This is the determinism contract of DESIGN.md §10 extended across the
// allocation-strategy change: arenas and interning must be invisible in
// the output.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "gtest/gtest.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/data_store.h"
#include "platform/entity.h"
#include "platform/mine_executor.h"
#include "platform/miner_framework.h"
#include "platform/sentiment_miner_plugin.h"

namespace wf {
namespace {

// Fingerprint of the post-sweep store bytes, captured on the pre-arena
// implementation (PR 9 tree) with the exact corpus + pipeline below. Any
// behavioural drift in tokenize/POS/parse/mining — however subtle — moves
// this value.
constexpr uint64_t kPreArenaGolden = 0x935efd0de23c07d0ULL;

const lexicon::SentimentLexicon& Lexicon() {
  static const lexicon::SentimentLexicon* const lexicon =
      new lexicon::SentimentLexicon(lexicon::SentimentLexicon::Embedded());
  return *lexicon;
}

const lexicon::PatternDatabase& Patterns() {
  static const lexicon::PatternDatabase* const patterns =
      new lexicon::PatternDatabase(lexicon::PatternDatabase::Embedded());
  return *patterns;
}

// Mines the seeded petroleum+pharma web corpus on `threads` workers
// (0 = sequential path, no executor) and returns the FNV-1a fingerprint of
// the saved store bytes.
uint64_t SweepFingerprint(size_t threads) {
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(9001);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(9002);

  platform::DataStore store;
  for (const auto* dataset : {&petro, &pharma}) {
    for (const corpus::GeneratedDoc& d : dataset->docs) {
      platform::Entity e(d.id, "crawl");
      e.SetBody(d.body);
      EXPECT_TRUE(store.Put(std::move(e)).ok());
    }
  }

  platform::MinerPipeline pipeline;
  pipeline.AddMiner(std::make_unique<platform::SentenceBoundaryMiner>());
  pipeline.AddMiner(std::make_unique<platform::TokenStatsMiner>());
  pipeline.AddMiner(std::make_unique<platform::AdHocSentimentMinerPlugin>(
      &Lexicon(), &Patterns()));
  if (threads == 0) {
    pipeline.ProcessStore(store);
  } else {
    platform::MineExecutor pool(
        platform::MineExecutorOptions{.threads = threads});
    pipeline.ProcessStore(store, &pool);
  }

  const std::string path = common::StrFormat(
      "/tmp/wf_arena_identity_%zu_%d.snap", threads, ::getpid());
  EXPECT_TRUE(store.Save(path).ok());
  auto bytes = common::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  std::filesystem::remove(path);
  return bytes.ok() ? common::Fnv1a64(bytes.value()) : 0;
}

TEST(ArenaIdentityTest, MiningBytesMatchPreArenaGoldenAtEveryThreadCount) {
  for (size_t threads : {0, 1, 2, 4, 8}) {
    const uint64_t fp = SweepFingerprint(threads);
    std::printf("threads=%zu fingerprint=0x%016llx\n", threads,
                static_cast<unsigned long long>(fp));
    EXPECT_EQ(fp, kPreArenaGolden) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace wf
