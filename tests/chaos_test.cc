// Deterministic chaos suite for the fault-injection harness and the
// resilient RPC layer (DESIGN.md "Fault model & resilience").
//
// Everything here replays exactly: fault verdicts are a pure function of
// (seed, service, per-service call sequence), the circuit breaker counts
// calls rather than wall time, and the acceptance scenario checks that a
// degraded cluster answers every query with honest coverage — then returns
// to baseline-identical answers once the faults clear and the breakers
// close.

#include <filesystem>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/logging.h"
#include "gtest/gtest.h"
#include "lexicon/pattern_db.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/miner_framework.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "platform/vinci.h"

namespace wf::platform {
namespace {

using ::wf::common::Status;
using ::wf::common::StatusCode;

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, SameSeedReplaysIdenticalVerdicts) {
  FaultPolicy policy;
  policy.fail_probability = 0.3;
  policy.corrupt_probability = 0.2;
  policy.latency_jitter_us = 50;

  FaultInjector a(42), b(42), c(43);
  a.SetPolicy("node/", policy);
  b.SetPolicy("node/", policy);
  c.SetPolicy("node/", policy);

  bool any_difference_from_c = false;
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Decision da = a.Decide("node/0/search");
    FaultInjector::Decision db = b.Decide("node/0/search");
    FaultInjector::Decision dc = c.Decide("node/0/search");
    EXPECT_EQ(da.action, db.action);
    EXPECT_EQ(da.extra_latency_us, db.extra_latency_us);
    if (da.action != dc.action ||
        da.extra_latency_us != dc.extra_latency_us) {
      any_difference_from_c = true;
    }
  }
  EXPECT_TRUE(any_difference_from_c);  // a different seed is a different run
}

TEST(FaultInjectorTest, VerdictsDependOnServiceNotCallOrder) {
  // Interleaving calls to other services must not perturb a service's
  // verdict stream — that is what makes concurrent scatters reproducible.
  FaultPolicy policy;
  policy.fail_probability = 0.5;
  FaultInjector a(7), b(7);
  a.SetPolicy("node/", policy);
  b.SetPolicy("node/", policy);

  std::vector<FaultInjector::Decision::Action> stream_a, stream_b;
  for (int i = 0; i < 50; ++i) {
    stream_a.push_back(a.Decide("node/0/search").action);
  }
  for (int i = 0; i < 50; ++i) {
    (void)b.Decide("node/1/search");  // noise on another service
    stream_b.push_back(b.Decide("node/0/search").action);
  }
  EXPECT_EQ(stream_a, stream_b);
}

TEST(FaultInjectorTest, LongestMatchingPrefixWins) {
  FaultPolicy fleet;  // benign
  FaultPolicy sick;
  sick.fail_probability = 1.0;
  FaultInjector injector(1);
  injector.SetPolicy("node/", fleet);
  injector.SetPolicy("node/1/", sick);

  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.Decide("node/0/search").action,
              FaultInjector::Decision::Action::kDeliver);
    EXPECT_EQ(injector.Decide("node/1/search").action,
              FaultInjector::Decision::Action::kUnavailable);
  }
  injector.ClearPolicy("node/1/");
  EXPECT_EQ(injector.Decide("node/1/search").action,
            FaultInjector::Decision::Action::kDeliver);
}

TEST(FaultInjectorTest, PartitionBeatsPoliciesUntilHealed) {
  FaultInjector injector(9);
  injector.Partition("node/2/");
  EXPECT_TRUE(injector.IsPartitioned("node/2/fetch"));
  EXPECT_FALSE(injector.IsPartitioned("node/0/fetch"));
  EXPECT_EQ(injector.Decide("node/2/search").action,
            FaultInjector::Decision::Action::kUnavailable);
  injector.Heal("node/2/");
  EXPECT_EQ(injector.Decide("node/2/search").action,
            FaultInjector::Decision::Action::kDeliver);
  EXPECT_EQ(injector.counters().partitioned, 1u);
  EXPECT_EQ(injector.counters().delivered, 1u);
}

// --- Resilient Call: retries, deadlines, breaker ---------------------------

class FaultyBusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(bus_
                    .RegisterService("node/0/echo",
                                     [](const std::string& request) {
                                       return "echo:" + request;
                                     })
                    .ok());
    bus_.AttachFaultInjector(&injector_);
  }

  VinciBus bus_;
  FaultInjector injector_{2026};
};

TEST_F(FaultyBusTest, RetriesSpendExactlyTheConfiguredAttempts) {
  FaultPolicy dead;
  dead.fail_probability = 1.0;
  injector_.SetPolicy("node/0/", dead);

  CallOptions options;
  options.max_retries = 3;
  options.initial_backoff_us = 1;
  options.max_backoff_us = 4;
  auto result = bus_.Call("node/0/echo", "x", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bus_.CallCount("node/0/echo"), 4u);  // 1 try + 3 retries

  injector_.ClearAllPolicies();
  auto healed = bus_.Call("node/0/echo", "x", options);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, "echo:x");
}

TEST_F(FaultyBusTest, CorruptionIsDetectedAndRetryable) {
  FaultPolicy garbled;
  garbled.corrupt_probability = 1.0;
  injector_.SetPolicy("node/0/", garbled);

  // Plain call: the mangled response surfaces as a checksum error, never as
  // silently wrong bytes.
  auto plain = bus_.Call("node/0/echo", "x");
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kCorruption);

  // Resilient call: corruption is retryable, so attempts are spent on it.
  CallOptions options;
  options.max_retries = 2;
  options.initial_backoff_us = 1;
  auto retried = bus_.Call("node/0/echo", "x", options);
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(bus_.CallCount("node/0/echo"), 4u);
  EXPECT_GE(injector_.counters().corrupted, 4u);
}

TEST_F(FaultyBusTest, DeadlineCutsOffSlowAndRetryingCalls) {
  FaultPolicy slow;
  slow.added_latency_us = 20000;  // 20 ms per call
  injector_.SetPolicy("node/0/", slow);

  CallOptions options;
  options.deadline_us = 2000;  // 2 ms budget
  auto late = bus_.Call("node/0/echo", "x", options);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);

  // A dead service under a deadline gives up via the deadline, not after
  // burning every retry's backoff.
  injector_.ClearAllPolicies();
  FaultPolicy dead;
  dead.fail_probability = 1.0;
  injector_.SetPolicy("node/0/", dead);
  options.max_retries = 1000;
  options.initial_backoff_us = 500;
  options.max_backoff_us = 500;
  auto cut = bus_.Call("node/0/echo", "x", options);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultyBusTest, NotFoundIsNeitherRetriedNorBreakerCounted) {
  CallOptions options;
  options.max_retries = 5;
  auto missing = bus_.Call("node/9/echo", "x", options);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // A registry miss is not a health signal: no breaker state accrues.
  EXPECT_EQ(bus_.breaker_state("node/9/echo"), BreakerState::kClosed);
}

TEST_F(FaultyBusTest, BreakerOpensProbesAndCloses) {
  bus_.SetBreakerConfig({/*failure_threshold=*/3, /*open_rejections=*/2});
  FaultPolicy dead;
  dead.fail_probability = 1.0;
  injector_.SetPolicy("node/0/", dead);

  // Three real failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(bus_.Call("node/0/echo", "x").status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(bus_.breaker_state("node/0/echo"), BreakerState::kOpen);
  size_t dispatched = bus_.CallCount("node/0/echo");

  // The next two calls are shed without reaching the service.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(bus_.Call("node/0/echo", "x").status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(bus_.CallCount("node/0/echo"), dispatched);
  EXPECT_EQ(bus_.breaker_state("node/0/echo"), BreakerState::kHalfOpen);

  // Half-open probe against a still-dead service re-opens the circuit.
  EXPECT_EQ(bus_.Call("node/0/echo", "x").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(bus_.CallCount("node/0/echo"), dispatched + 1);
  EXPECT_EQ(bus_.breaker_state("node/0/echo"), BreakerState::kOpen);

  // Service heals: drain the rejection window, then the probe closes it.
  injector_.ClearAllPolicies();
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(bus_.Call("node/0/echo", "x").ok());
  }
  auto probe = bus_.Call("node/0/echo", "x");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(bus_.breaker_state("node/0/echo"), BreakerState::kClosed);
  EXPECT_TRUE(bus_.Call("node/0/echo", "x").ok());
}

TEST_F(FaultyBusTest, BreakerRejectionsAreNeverRetried) {
  bus_.SetBreakerConfig({/*failure_threshold=*/1, /*open_rejections=*/100});
  FaultPolicy dead;
  dead.fail_probability = 1.0;
  injector_.SetPolicy("node/0/", dead);
  EXPECT_FALSE(bus_.Call("node/0/echo", "x").ok());  // opens the breaker
  size_t dispatched = bus_.CallCount("node/0/echo");

  CallOptions options;
  options.max_retries = 50;
  options.initial_backoff_us = 1;
  auto shed = bus_.Call("node/0/echo", "x", options);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  // One fast rejection, no dispatches, no retry storm.
  EXPECT_EQ(bus_.CallCount("node/0/echo"), dispatched);
}

// --- Miner quarantine -------------------------------------------------------

class BrokenMiner : public EntityMiner {
 public:
  std::string name() const override { return "broken"; }
  common::Status Process(Entity&) override {
    return Status::Internal("plugin crash");
  }
};

class CountingMiner : public EntityMiner {
 public:
  explicit CountingMiner(size_t* count) : count_(count) {}
  std::string name() const override { return "counting"; }
  common::Status Process(Entity&) override {
    ++*count_;
    return Status::Ok();
  }

 private:
  size_t* count_;
};

TEST(MinerQuarantineTest, RepeatedFailuresQuarantineOnlyTheSickMiner) {
  size_t processed = 0;
  MinerPipeline pipeline;
  pipeline.SetQuarantineThreshold(3);
  pipeline.AddMiner(std::make_unique<BrokenMiner>());
  pipeline.AddMiner(std::make_unique<CountingMiner>(&processed));

  Entity e("doc", "test");
  e.SetBody("hello");
  // While the broken miner is live it fails the entity (and starves the
  // healthy miner behind it, since the chain stops at the first failure).
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(pipeline.ProcessEntity(e).ok());
  }
  EXPECT_EQ(processed, 0u);
  // Quarantined: the chain now skips it and the healthy miner runs.
  EXPECT_TRUE(pipeline.ProcessEntity(e).ok());
  EXPECT_EQ(processed, 1u);

  std::vector<MinerPipeline::MinerStats> stats = pipeline.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].failures, 3u);
  EXPECT_FALSE(stats[1].quarantined);

  pipeline.ClearQuarantines();
  EXPECT_FALSE(pipeline.ProcessEntity(e).ok());  // broken miner is back
  EXPECT_FALSE(pipeline.Stats()[0].quarantined);  // streak restarted at 1
}

// --- Acceptance: degraded cluster, honest coverage, full recovery ----------

// Twelve documents, four positive and four negative about Kodak, spread
// over the shards by the normal routing hash.
void BuildSentimentCluster(Cluster* cluster,
                           const lexicon::SentimentLexicon* lexicon,
                           const lexicon::PatternDatabase* patterns) {
  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 12; ++i) {
    std::string body;
    if (i % 3 == 0) {
      body = "Kodak impresses everyone who tried it.";
    } else if (i % 3 == 1) {
      body = "Lawsuits plague Kodak.";
    } else {
      body = "Kodak announced a quarterly meeting.";
    }
    docs.emplace_back("doc-" + std::to_string(i), body);
  }
  BatchIngestor ingestor("chaos", docs);
  ASSERT_EQ(IngestAll(ingestor, *cluster), docs.size());
  cluster->DeployMiner([lexicon, patterns] {
    return std::make_unique<AdHocSentimentMinerPlugin>(lexicon, patterns);
  });
  cluster->MineAndIndexAll();
}

std::string Summarize(const SentimentQueryResult& r) {
  std::string out = r.subject + "|" + std::to_string(r.positive_docs) + "|" +
                    std::to_string(r.negative_docs);
  for (const SentimentHit& hit : r.hits) {
    out += "|" + hit.doc_id +
           (hit.polarity == lexicon::Polarity::kPositive ? "+" : "-") +
           hit.sentence;
  }
  return out;
}

TEST(ChaosAcceptanceTest, PartitionAloneGivesExactPartialCoverage) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster(4);
  BuildSentimentCluster(&cluster, &lexicon, &patterns);

  FaultInjector injector(11);
  cluster.bus().AttachFaultInjector(&injector);
  injector.Partition("node/2/");

  SearchResult search = cluster.Search("kodak");
  EXPECT_EQ(search.nodes_total, 4u);
  EXPECT_EQ(search.nodes_responded, 3u);
  EXPECT_FALSE(search.complete());
  ASSERT_EQ(search.failed_services.size(), 1u);
  EXPECT_EQ(search.failed_services[0], "node/2/search");

  injector.HealAll();
  EXPECT_TRUE(cluster.Search("kodak").complete());
}

TEST(ChaosAcceptanceTest, DegradedQueriesCompleteAndRecoverToBaseline) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  Cluster cluster(4);
  BuildSentimentCluster(&cluster, &lexicon, &patterns);
  SentimentQueryService service(&cluster);
  ASSERT_TRUE(service.RegisterService().ok());
  cluster.bus().SetBreakerConfig(
      {/*failure_threshold=*/3, /*open_rejections=*/2});

  // Fault-free baseline — for the answers and for the wf_obs counters.
  SentimentQueryResult baseline = service.Query("Kodak");
  EXPECT_EQ(baseline.positive_docs, 4u);
  EXPECT_EQ(baseline.negative_docs, 4u);
  EXPECT_TRUE(baseline.complete());
  const uint64_t opens_before =
      cluster.metrics().Snapshot().CounterValue("vinci/breaker/open_total");

  // Chaos: 20% of calls to any node service fail, and node 1 is cut off
  // from the network entirely.
  FaultInjector injector(20250806);
  FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  injector.Partition("node/1/");
  cluster.bus().AttachFaultInjector(&injector);

  for (int round = 0; round < 10; ++round) {
    SentimentQueryResult degraded = service.Query("Kodak");
    // Every query completes, and the coverage report is honest: with a
    // whole node partitioned, the answer can never claim all shards spoke.
    EXPECT_EQ(degraded.nodes_total, 4u);
    EXPECT_LT(degraded.nodes_responded, degraded.nodes_total);
    EXPECT_FALSE(degraded.complete());
    // Counts degrade; they never exceed the truth.
    EXPECT_LE(degraded.positive_docs, baseline.positive_docs);
    EXPECT_LE(degraded.negative_docs, baseline.negative_docs);
    EXPECT_LE(degraded.hits.size(), baseline.hits.size());
  }
  EXPECT_GT(injector.counters().partitioned, 0u);
  EXPECT_GT(injector.counters().failed, 0u);

  // The same story, told by metrics alone: the partitioned node's repeated
  // failures tripped breakers (the open counter rose) and the resilient
  // calls spent retries (the retry histogram filled in).
  {
    obs::MetricsSnapshot degraded_metrics = cluster.metrics().Snapshot();
    EXPECT_GT(degraded_metrics.CounterValue("vinci/breaker/open_total"),
              opens_before);
    const obs::HistogramSnapshot* retries =
        degraded_metrics.FindHistogram("vinci/retries_per_call");
    ASSERT_NE(retries, nullptr);
    EXPECT_GT(retries->count, 0u);
    uint64_t retried = 0;
    for (const auto& [name, value] : degraded_metrics.counters) {
      if (name.rfind("vinci/retry_total/", 0) == 0) retried += value;
    }
    EXPECT_GT(retried, 0u);
  }

  // Faults clear. Warm-up queries drain the open breakers' rejection
  // windows and let their half-open probes succeed.
  injector.HealAll();
  injector.ClearAllPolicies();
  bool breakers_closed = false;
  for (int round = 0; round < 20 && !breakers_closed; ++round) {
    (void)service.Query("Kodak");
    breakers_closed = true;
    for (size_t n = 0; n < cluster.node_count(); ++n) {
      std::string prefix = "node/" + std::to_string(n) + "/";
      for (const char* suffix : {"search", "fetch"}) {
        if (cluster.bus().breaker_state(prefix + suffix) !=
            BreakerState::kClosed) {
          breakers_closed = false;
        }
      }
    }
  }
  ASSERT_TRUE(breakers_closed);

  // Back at baseline by the metrics' account too: every breaker-state
  // gauge reads closed (0), and successful probes recorded closes.
  {
    obs::MetricsSnapshot healed_metrics = cluster.metrics().Snapshot();
    size_t state_gauges = 0;
    for (const auto& [name, value] : healed_metrics.gauges) {
      if (name.rfind("vinci/breaker/state/", 0) == 0) {
        ++state_gauges;
        EXPECT_EQ(value, 0) << name;
      }
    }
    EXPECT_GT(state_gauges, 0u);
    EXPECT_GT(healed_metrics.CounterValue("vinci/breaker/close_total"), 0u);
  }

  // With the cluster healed and every circuit closed, the answer is
  // indistinguishable from the fault-free baseline.
  SentimentQueryResult recovered = service.Query("Kodak");
  EXPECT_TRUE(recovered.complete());
  EXPECT_EQ(Summarize(recovered), Summarize(baseline));
}

TEST(ChaosAcceptanceTest, IdenticalSeedsReplayIdenticalDegradedRuns) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();

  auto run = [&lexicon, &patterns]() {
    Cluster cluster(4);
    BuildSentimentCluster(&cluster, &lexicon, &patterns);
    SentimentQueryService service(&cluster);
    WF_CHECK_OK(service.RegisterService());
    FaultInjector injector(777);
    FaultPolicy flaky;
    flaky.fail_probability = 0.3;
    flaky.corrupt_probability = 0.1;
    injector.SetPolicy("node/", flaky);
    cluster.bus().AttachFaultInjector(&injector);
    std::string trace;
    for (int round = 0; round < 5; ++round) {
      SentimentQueryResult r = service.Query("Kodak");
      trace += Summarize(r) + "#" + std::to_string(r.nodes_responded) + "/" +
               std::to_string(r.nodes_total) + ";";
    }
    return trace;
  };

  // Thread interleaving inside the scatters differs between runs; the
  // fault verdicts — and therefore the answers — must not.
  EXPECT_EQ(run(), run());
}

TEST(ChaosAcceptanceTest, TracedSearchUnderFaultsExportsOneStitchedTrace) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();

  // One traced scatter/gather search on a degraded cluster, twice from the
  // same seeds. Spans carry no timestamps and their ids are pure functions
  // of (tracer seed, parent, name, sibling order), so the two exports must
  // be byte-identical even though thread scheduling and retry backoffs are
  // not.
  auto run = [&lexicon, &patterns] {
    Cluster cluster(4);
    BuildSentimentCluster(&cluster, &lexicon, &patterns);
    obs::Tracer tracer(20250806);
    cluster.AttachTracer(&tracer);
    FaultInjector injector(20250806);
    FaultPolicy flaky;
    flaky.fail_probability = 0.2;
    injector.SetPolicy("node/", flaky);
    injector.Partition("node/1/");
    cluster.bus().AttachFaultInjector(&injector);
    (void)cluster.Search("kodak");
    return tracer.ExportText();
  };

  std::string text = run();
  EXPECT_EQ(text, run());

  // Exactly one root span — the query — and it reports its coverage.
  size_t roots = 0, pos = 0;
  while ((pos = text.find("parent=-", pos)) != std::string::npos) {
    ++roots;
    pos += 8;
  }
  EXPECT_EQ(roots, 1u);
  size_t name_at = text.find("name=cluster/search");
  ASSERT_NE(name_at, std::string::npos);
  EXPECT_NE(text.find("nodes_total=4"), std::string::npos);

  // Every node's search call is a child of that root — including the
  // partitioned node's, whose span simply records the failure.
  size_t span_at = text.rfind("span=", name_at);
  ASSERT_NE(span_at, std::string::npos);
  std::string root_hex = text.substr(span_at + 5, 16);
  for (size_t n = 0; n < 4; ++n) {
    std::string child = "parent=" + root_hex + " name=node/" +
                        std::to_string(n) + "/search";
    EXPECT_NE(text.find(child), std::string::npos) << child << "\n" << text;
  }
}

// --- Node crash / restart lifecycle -----------------------------------------

// A fresh directory under /tmp, removed on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_("/tmp/wf_chaos_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(NodeLifecycleTest, CrashedNodeDegradesCoverageAndRestartHealsIt) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();
  ScopedTempDir dir("lifecycle");
  Cluster cluster(4);
  ASSERT_TRUE(cluster.EnableDurability({dir.path(), 0}).ok());
  BuildSentimentCluster(&cluster, &lexicon, &patterns);

  SearchResult healthy = cluster.Search("kodak");
  ASSERT_TRUE(healthy.complete());
  ASSERT_EQ(healthy.docs.size(), 12u);
  ASSERT_TRUE(cluster.CheckpointAll().ok());

  // Kill a shard. Coverage degrades honestly on both the query and the
  // stats paths, and writes routed to it are refused, not dropped.
  const size_t victim = 2;
  ASSERT_TRUE(cluster.CrashNode(victim).ok());
  EXPECT_FALSE(cluster.IsNodeUp(victim));
  EXPECT_EQ(cluster.NodesUp(), 3u);
  EXPECT_EQ(cluster.CrashNode(victim).code(),
            StatusCode::kFailedPrecondition);  // double-kill is refused

  SearchResult degraded = cluster.Search("kodak");
  EXPECT_EQ(degraded.nodes_total, 4u);
  EXPECT_EQ(degraded.nodes_responded, 3u);
  EXPECT_FALSE(degraded.complete());
  ASSERT_EQ(degraded.failed_services.size(), 1u);
  EXPECT_EQ(degraded.failed_services[0], "node/2/search");
  EXPECT_LT(degraded.docs.size(), healthy.docs.size());

  ClusterStats down_stats = cluster.CollectStats();
  EXPECT_EQ(down_stats.nodes_total, 4u);
  EXPECT_EQ(down_stats.nodes_responded, 3u);
  ASSERT_EQ(down_stats.failed_services.size(), 1u);
  EXPECT_EQ(down_stats.failed_services[0], "wfstats/node/2");
  EXPECT_EQ(down_stats.merged.GaugeValue("cluster/nodes_up"), 3);
  EXPECT_EQ(down_stats.merged.CounterValue("cluster/node_crashes_total"), 1u);

  bool saw_unavailable = false;
  for (int i = 0; i < 4 && !saw_unavailable; ++i) {
    Entity probe("probe-" + std::to_string(i), "test");
    if (cluster.Route(probe.id()) == victim) {
      EXPECT_EQ(cluster.Ingest(std::move(probe)).code(),
                StatusCode::kUnavailable);
      saw_unavailable = true;
    }
  }

  // Restart: the shard recovers from its checkpoint and rejoins; coverage
  // returns to complete with the same answer as before the crash.
  ASSERT_TRUE(cluster.RestartNode(victim).ok());
  EXPECT_TRUE(cluster.IsNodeUp(victim));
  EXPECT_EQ(cluster.RestartNode(victim).code(),
            StatusCode::kFailedPrecondition);  // double-restart is refused

  SearchResult healed = cluster.Search("kodak");
  EXPECT_TRUE(healed.complete());
  EXPECT_EQ(healed.docs, healthy.docs);
  ClusterStats up_stats = cluster.CollectStats();
  EXPECT_TRUE(up_stats.complete());
  EXPECT_EQ(up_stats.merged.GaugeValue("cluster/nodes_up"), 4);
  EXPECT_EQ(up_stats.merged.CounterValue("cluster/node_restarts_total"), 1u);
}

TEST(NodeLifecycleTest, NonDurableClusterCannotRestartACrashedNode) {
  Cluster cluster(2);
  ASSERT_TRUE(cluster.CrashNode(1).ok());
  EXPECT_EQ(cluster.RestartNode(1).code(), StatusCode::kFailedPrecondition);
  // The crash itself still works: a non-durable node can die, it just
  // cannot come back.
  EXPECT_FALSE(cluster.IsNodeUp(1));
}

// --- Acceptance: kill mid-ingest, torn WAL tail, recover, heal --------------

// The full durability story, asserted from metrics and search results
// alone: a node is killed mid-ingest leaving a torn WAL tail; while it is
// down queries degrade honestly; after restart it recovers every acked
// write, detects the torn tail exactly once, resurrects nothing partial,
// and the healed cluster's answers are byte-identical to a never-crashed
// run over the same documents.
TEST(CrashRecoveryAcceptanceTest, KillMidIngestRecoverToBaselineAnswers) {
  auto lexicon = lexicon::SentimentLexicon::Embedded();
  auto patterns = lexicon::PatternDatabase::Embedded();

  std::vector<std::pair<std::string, std::string>> docs;
  for (int i = 0; i < 12; ++i) {
    std::string body;
    if (i % 3 == 0) {
      body = "Kodak impresses everyone who tried it.";
    } else if (i % 3 == 1) {
      body = "Lawsuits plague Kodak.";
    } else {
      body = "Kodak announced a quarterly meeting.";
    }
    docs.emplace_back("doc-" + std::to_string(i), body);
  }
  auto first_half = std::vector<std::pair<std::string, std::string>>(
      docs.begin(), docs.begin() + 6);
  auto second_half = std::vector<std::pair<std::string, std::string>>(
      docs.begin() + 6, docs.end());
  auto deploy = [&lexicon, &patterns](Cluster* cluster) {
    cluster->DeployMiner([&lexicon, &patterns] {
      return std::make_unique<AdHocSentimentMinerPlugin>(&lexicon, &patterns);
    });
  };

  // Run A: the never-crashed baseline over the same documents.
  ScopedTempDir dir_a("baseline");
  Cluster baseline_cluster(4);
  ASSERT_TRUE(baseline_cluster.EnableDurability({dir_a.path(), 0}).ok());
  deploy(&baseline_cluster);
  {
    BatchIngestor ingestor("chaos", docs);
    ASSERT_EQ(IngestAll(ingestor, baseline_cluster), docs.size());
  }
  baseline_cluster.MineAndIndexAll();
  SentimentQueryService baseline_service(&baseline_cluster);
  ASSERT_TRUE(baseline_service.RegisterService().ok());
  SentimentQueryResult baseline = baseline_service.Query("Kodak");
  ASSERT_TRUE(baseline.complete());
  ASSERT_EQ(baseline.positive_docs, 4u);
  ASSERT_EQ(baseline.negative_docs, 4u);

  // Run B: same documents, but the shard owning doc-6 is killed mid-ingest
  // by a storage crash that tears its WAL append mid-frame.
  ScopedTempDir dir_b("chaos");
  common::StorageFaultInjector storage(20260806);
  Cluster cluster(4);
  ASSERT_TRUE(cluster.EnableDurability({dir_b.path(), 0}, &storage).ok());
  deploy(&cluster);
  {
    BatchIngestor ingestor("chaos", first_half);
    ASSERT_EQ(IngestAll(ingestor, cluster), first_half.size());
  }
  ASSERT_TRUE(cluster.CheckpointAll().ok());

  const size_t victim = cluster.Route("doc-6");
  storage.ArmCrash(
      dir_b.path() + "/node-" + std::to_string(victim),
      /*after_appends=*/0, /*torn_bytes=*/10);

  size_t duplicates = 0;
  std::vector<Entity> unacked;
  {
    BatchIngestor ingestor("chaos", second_half);
    size_t stored = IngestAll(ingestor, cluster, &duplicates, &unacked);
    EXPECT_EQ(stored + unacked.size(), second_half.size());
  }
  // Everything routed to the victim was refused — first by the torn
  // append, then by the dead disk — and handed back, not dropped.
  ASSERT_FALSE(unacked.empty());
  EXPECT_EQ(duplicates, 0u);
  for (const Entity& e : unacked) {
    EXPECT_EQ(cluster.Route(e.id()), victim);
    EXPECT_FALSE(cluster.node(victim).store().Contains(e.id()));
  }
  const size_t acked_total = docs.size() - unacked.size();
  EXPECT_EQ(cluster.TotalEntities(), acked_total);

  // The machine goes down. While it is down, coverage is honestly partial.
  ASSERT_TRUE(cluster.CrashNode(victim).ok());
  SearchResult down = cluster.Search("kodak");
  EXPECT_EQ(down.nodes_total, 4u);
  EXPECT_EQ(down.nodes_responded, 3u);
  EXPECT_FALSE(down.complete());
  ClusterStats down_stats = cluster.CollectStats();
  EXPECT_FALSE(down_stats.complete());
  EXPECT_EQ(down_stats.merged.GaugeValue("cluster/nodes_up"), 3);

  // Power restored; the node restarts and recovers from disk.
  storage.ClearCrashes();
  ASSERT_TRUE(cluster.RestartNode(victim).ok());

  // The recovery story, told by the merged metrics alone: the torn tail
  // was detected exactly once, and no acked write was lost (every acked
  // entity is back in a store).
  ClusterStats recovered_stats = cluster.CollectStats();
  ASSERT_TRUE(recovered_stats.complete());
  EXPECT_EQ(recovered_stats.merged.CounterValue(
                "wal/torn_tail_detected_total"),
            1u);
  EXPECT_EQ(recovered_stats.merged.GaugeValue("cluster/nodes_up"), 4);
  EXPECT_EQ(recovered_stats.merged.CounterValue("cluster/node_crashes_total"),
            1u);
  EXPECT_EQ(recovered_stats.merged.CounterValue(
                "cluster/node_restarts_total"),
            1u);
  EXPECT_EQ(cluster.TotalEntities(), acked_total);

  // Re-drive the refused writes — the contract is that the caller still
  // holds them precisely because they were never acked.
  for (Entity& e : unacked) {
    ASSERT_TRUE(cluster.Ingest(std::move(e)).ok());
  }
  EXPECT_EQ(cluster.TotalEntities(), docs.size());

  // Healed: coverage is complete and the sentiment answer is
  // byte-identical to the never-crashed baseline.
  cluster.MineAndIndexAll();
  SentimentQueryService service(&cluster);
  ASSERT_TRUE(service.RegisterService().ok());
  SentimentQueryResult recovered = service.Query("Kodak");
  EXPECT_TRUE(recovered.complete());
  EXPECT_EQ(Summarize(recovered), Summarize(baseline));
  SearchResult healed = cluster.Search("kodak");
  EXPECT_TRUE(healed.complete());
  EXPECT_EQ(healed.docs.size(), 12u);
}

}  // namespace
}  // namespace wf::platform
