#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/string_util.h"
#include "corpus/datasets.h"
#include "corpus/review_gen.h"
#include "corpus/sentence_templates.h"
#include "corpus/web_gen.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::corpus {
namespace {

using lexicon::Polarity;

// --- Domains --------------------------------------------------------------------

TEST(DomainTest, AllDomainsWellFormed) {
  for (const DomainVocab* d : {&CameraDomain(), &MusicDomain(),
                               &PetroleumDomain(), &PharmaDomain()}) {
    EXPECT_FALSE(d->name.empty());
    EXPECT_GE(d->products.size(), 7u);
    EXPECT_GE(d->features.size(), 10u);
    EXPECT_FALSE(d->topical_nouns.empty());
    for (const Product& p : d->products) {
      EXPECT_FALSE(p.name.empty());
      EXPECT_TRUE(common::IsCapitalized(p.name)) << p.name;
    }
  }
}

TEST(DomainTest, CameraDomainMatchesPaperVocabulary) {
  // Table 2's head terms must be present.
  const auto& features = CameraDomain().features;
  for (const char* f : {"camera", "picture", "flash", "lens",
                        "picture quality", "battery", "battery life",
                        "viewfinder", "zoom"}) {
    EXPECT_NE(std::find(features.begin(), features.end(), f),
              features.end())
        << f;
  }
}

TEST(DomainTest, TruncatedPoolsKeepFraction) {
  const WordPools& full = SharedWordPools();
  WordPools half = TruncatedPools(full, 0.5);
  EXPECT_EQ(half.pos_adjectives.size(), full.pos_adjectives.size() / 2);
  EXPECT_EQ(half.neutral_adjectives.size(),
            full.neutral_adjectives.size());  // neutral pool untouched
  // Prefix property: truncation keeps the head of each pool.
  EXPECT_EQ(half.pos_adjectives[0], full.pos_adjectives[0]);
}

// --- Generators -------------------------------------------------------------------

TEST(ReviewGenTest, DeterministicForSeed) {
  std::vector<GeneratedDoc> a = GenerateReviews(CameraDomain(), 10, 99);
  std::vector<GeneratedDoc> b = GenerateReviews(CameraDomain(), 10, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].body, b[i].body);
    EXPECT_EQ(a[i].golds.size(), b[i].golds.size());
  }
}

TEST(ReviewGenTest, DifferentSeedsDiffer) {
  std::vector<GeneratedDoc> a = GenerateReviews(CameraDomain(), 5, 1);
  std::vector<GeneratedDoc> b = GenerateReviews(CameraDomain(), 5, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].body != b[i].body) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// Every gold must be resolvable: its sentence index exists and the subject
// surface occurs in that sentence.
void CheckGoldsResolvable(const std::vector<GeneratedDoc>& docs) {
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  size_t unresolved = 0, total = 0;
  for (const GeneratedDoc& doc : docs) {
    text::TokenStream tokens = tokenizer.Tokenize(doc.body);
    std::vector<text::SentenceSpan> spans = splitter.Split(tokens);
    for (const SpotGold& gold : doc.golds) {
      ++total;
      ASSERT_LT(gold.sentence_index, spans.size()) << doc.id;
      const text::SentenceSpan& span = spans[gold.sentence_index];
      text::TokenStream subj = tokenizer.Tokenize(gold.subject);
      bool found = false;
      for (size_t i = span.begin_token;
           i + subj.size() <= span.end_token && !found; ++i) {
        bool match = true;
        for (size_t k = 0; k < subj.size(); ++k) {
          if (!common::EqualsIgnoreCase(tokens[i + k].text,
                                        subj[k].text)) {
            match = false;
            break;
          }
        }
        found = match;
      }
      // Plural surfaces ("batteries") are allowed for singular golds.
      if (!found) ++unresolved;
    }
  }
  // A tiny slack for plural-surface mismatches handled by the evaluator.
  EXPECT_LT(static_cast<double>(unresolved), 0.05 * total);
}

TEST(ReviewGenTest, GoldsResolvable) {
  CheckGoldsResolvable(GenerateReviews(CameraDomain(), 50, 42));
}

TEST(WebGenTest, GoldsResolvable) {
  CheckGoldsResolvable(
      GenerateWebDocs(PetroleumDomain(), 50, 42, WebGenOptions{}));
}

TEST(ReviewGenTest, CompositionRoughlyMatchesKnobs) {
  ReviewGenOptions options;
  std::vector<GeneratedDoc> docs =
      GenerateReviews(CameraDomain(), 200, 42, options);
  std::map<char, size_t> by_class;
  size_t golds = 0;
  for (const GeneratedDoc& d : docs) {
    for (const SpotGold& g : d.golds) {
      ++by_class[g.template_class];
      ++golds;
    }
  }
  double polar = static_cast<double>(by_class['A'] + by_class['B'] +
                                     by_class['D']) /
                 static_cast<double>(golds);
  EXPECT_NEAR(polar, options.polar_prob, 0.06);
  // Neutral mentions dominate, as in the paper's test sets.
  EXPECT_GT(by_class['C'], golds / 2);
}

TEST(ReviewGenTest, DocPolarityBalanced) {
  std::vector<GeneratedDoc> docs = GenerateReviews(MusicDomain(), 200, 7);
  size_t pos = 0;
  for (const GeneratedDoc& d : docs) {
    ASSERT_NE(d.doc_polarity, Polarity::kNeutral);
    if (d.doc_polarity == Polarity::kPositive) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / docs.size(), 0.5, 0.1);
}

TEST(ReviewGenTest, NeutralGoldsAreIClass) {
  std::vector<GeneratedDoc> docs = GenerateReviews(CameraDomain(), 50, 3);
  for (const GeneratedDoc& d : docs) {
    for (const SpotGold& g : d.golds) {
      if (g.polarity == Polarity::kNeutral) {
        EXPECT_TRUE(g.i_class);
      }
    }
  }
}

TEST(OffTopicGenTest, ProducesSubjectFreeDocs) {
  std::vector<GeneratedDoc> docs = GenerateOffTopicDocs(30, 5);
  EXPECT_EQ(docs.size(), 30u);
  for (const GeneratedDoc& d : docs) {
    EXPECT_FALSE(d.on_topic);
    EXPECT_TRUE(d.golds.empty());
    EXPECT_FALSE(d.body.empty());
  }
}

TEST(DatasetTest, PaperSizes) {
  ReviewDataset camera = BuildCameraDataset(1);
  EXPECT_EQ(camera.d_plus.size(), 485u);
  EXPECT_EQ(camera.d_minus.size(), 1838u);
  ReviewDataset music = BuildMusicDataset(1);
  EXPECT_EQ(music.d_plus.size(), 250u);
  EXPECT_EQ(music.d_minus.size(), 2389u);
}

TEST(DatasetTest, TrainingIdsDisjointFromTest) {
  ReviewDataset camera = BuildCameraDataset(1);
  std::set<std::string> test_ids;
  for (const GeneratedDoc& d : camera.d_plus) test_ids.insert(d.id);
  for (const GeneratedDoc& d : camera.train) {
    EXPECT_EQ(test_ids.count(d.id), 0u) << d.id;
  }
}

// --- Sentence factory invariants ------------------------------------------------------

TEST(SentenceFactoryTest, EverySentenceIsOneSplitterSentence) {
  common::Rng rng(11);
  SentenceFactory factory(&CameraDomain(), &SharedWordPools());
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  for (int i = 0; i < 200; ++i) {
    GenSentence s = factory.PolarExtractable(
        rng, "battery",
        i % 2 == 0 ? Polarity::kPositive : Polarity::kNegative);
    text::TokenStream tokens = tokenizer.Tokenize(s.text);
    EXPECT_EQ(splitter.Split(tokens).size(), 1u) << s.text;
  }
}

TEST(SentenceFactoryTest, ComparisonYieldsOppositeGolds) {
  common::Rng rng(11);
  SentenceFactory factory(&CameraDomain(), &SharedWordPools());
  GenSentence s = factory.Comparison(rng, "Vistar 4500", "Stylus C50");
  ASSERT_EQ(s.golds.size(), 2u);
  EXPECT_EQ(s.golds[0].polarity, Polarity::kPositive);
  EXPECT_EQ(s.golds[1].polarity, Polarity::kNegative);
}

TEST(SentenceFactoryTest, ArticleAgreement) {
  common::Rng rng(13);
  SentenceFactory factory(&CameraDomain(), &SharedWordPools());
  for (int i = 0; i < 300; ++i) {
    GenSentence s = factory.PolarExtractable(rng, "lens",
                                             Polarity::kPositive);
    EXPECT_EQ(s.text.find(" a excellent"), std::string::npos) << s.text;
    EXPECT_EQ(s.text.find(" a impressive"), std::string::npos) << s.text;
    EXPECT_EQ(s.text.find(" an sturdy"), std::string::npos) << s.text;
  }
}

}  // namespace
}  // namespace wf::corpus
