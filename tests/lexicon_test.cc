#include <gtest/gtest.h>

#include "lexicon/pattern_db.h"
#include "text/inflection.h"
#include "lexicon/sentiment_lexicon.h"

namespace wf::lexicon {
namespace {

// --- Polarity -----------------------------------------------------------------

TEST(PolarityTest, FlipIsInvolution) {
  for (Polarity p : {Polarity::kNegative, Polarity::kNeutral,
                     Polarity::kPositive}) {
    EXPECT_EQ(Flip(Flip(p)), p);
  }
  EXPECT_EQ(Flip(Polarity::kPositive), Polarity::kNegative);
  EXPECT_EQ(Flip(Polarity::kNeutral), Polarity::kNeutral);
}

TEST(PolarityTest, Names) {
  EXPECT_EQ(PolarityName(Polarity::kPositive), "positive");
  EXPECT_EQ(PolarityName(Polarity::kNegative), "negative");
  EXPECT_EQ(PolarityName(Polarity::kNeutral), "neutral");
}

// --- Sentiment lexicon -----------------------------------------------------------

TEST(SentimentLexiconTest, EmbeddedLoadsAndIsLarge) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  EXPECT_GT(lex.size(), 400u);
}

TEST(SentimentLexiconTest, BasicLookups) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  EXPECT_EQ(lex.Lookup("excellent", pos::PosTag::kJJ),
            Polarity::kPositive);
  EXPECT_EQ(lex.Lookup("terrible", pos::PosTag::kJJ), Polarity::kNegative);
  EXPECT_EQ(lex.Lookup("nightmare", pos::PosTag::kNN),
            Polarity::kNegative);
  EXPECT_FALSE(lex.Lookup("table", pos::PosTag::kNN).has_value());
}

TEST(SentimentLexiconTest, PosClassMatters) {
  SentimentLexicon lex;
  ASSERT_TRUE(lex.LoadText("sound JJ +\n").ok());
  EXPECT_TRUE(lex.Lookup("sound", pos::PosTag::kJJ).has_value());
  EXPECT_FALSE(lex.Lookup("sound", pos::PosTag::kNN).has_value());
}

TEST(SentimentLexiconTest, InflectionAwareLookup) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  // Plural noun form finds the singular entry.
  EXPECT_EQ(lex.Lookup("nightmares", pos::PosTag::kNNS),
            Polarity::kNegative);
  // Inflected verb forms find the lemma.
  EXPECT_EQ(lex.Lookup("loved", pos::PosTag::kVBD), Polarity::kPositive);
  EXPECT_EQ(lex.Lookup("disappoints", pos::PosTag::kVBZ),
            Polarity::kNegative);
  // Comparative adjective finds the base.
  EXPECT_EQ(lex.Lookup("sharper", pos::PosTag::kJJR), Polarity::kPositive);
}

TEST(SentimentLexiconTest, ParticipleFallsBackToAdjectiveTable) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  EXPECT_EQ(lex.Lookup("disappointed", pos::PosTag::kVBN),
            Polarity::kNegative);
}

TEST(SentimentLexiconTest, CaseInsensitive) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  EXPECT_EQ(lex.Lookup("Excellent", pos::PosTag::kJJ),
            Polarity::kPositive);
}

TEST(SentimentLexiconTest, MultiWordEntries) {
  SentimentLexicon lex = SentimentLexicon::Embedded();
  EXPECT_EQ(lex.LookupLemma("state of the art", LexPos::kAny),
            Polarity::kPositive);
  EXPECT_EQ(lex.LookupLemma("waste of money", LexPos::kAny),
            Polarity::kNegative);
}

TEST(SentimentLexiconTest, LoadTextFormat) {
  SentimentLexicon lex;
  ASSERT_TRUE(lex.LoadText("# comment\n"
                           "splendid JJ +\n"
                           "dreck NN -\n"
                           "\n"
                           "over the moon * +\n")
                  .ok());
  EXPECT_EQ(lex.size(), 3u);
  EXPECT_EQ(lex.Lookup("splendid", pos::PosTag::kJJ), Polarity::kPositive);
  EXPECT_EQ(lex.LookupLemma("over the moon", LexPos::kAny),
            Polarity::kPositive);
}

TEST(SentimentLexiconTest, LoadTextRejectsBadPolarity) {
  SentimentLexicon lex;
  EXPECT_FALSE(lex.LoadText("word JJ ?\n").ok());
}

TEST(SentimentLexiconTest, LoadTextRejectsBadPos) {
  SentimentLexicon lex;
  EXPECT_FALSE(lex.LoadText("word XX +\n").ok());
}

TEST(SentimentLexiconTest, LoadTextRejectsShortLine) {
  SentimentLexicon lex;
  EXPECT_FALSE(lex.LoadText("word\n").ok());
}

TEST(SentimentLexiconTest, LaterEntryOverrides) {
  SentimentLexicon lex;
  ASSERT_TRUE(lex.LoadText("odd JJ +\nodd JJ -\n").ok());
  EXPECT_EQ(lex.Lookup("odd", pos::PosTag::kJJ), Polarity::kNegative);
}

TEST(SentimentLexiconTest, LexPosMatching) {
  EXPECT_TRUE(LexPosMatches(LexPos::kAdjective, pos::PosTag::kJJ));
  EXPECT_TRUE(LexPosMatches(LexPos::kAdjective, pos::PosTag::kVBN));
  EXPECT_FALSE(LexPosMatches(LexPos::kAdjective, pos::PosTag::kNN));
  EXPECT_TRUE(LexPosMatches(LexPos::kAny, pos::PosTag::kCD));
}

TEST(SentimentLexiconTest, EntriesExport) {
  SentimentLexicon lex;
  ASSERT_TRUE(lex.LoadText("alpha JJ +\nbeta NN -\n").ok());
  std::vector<SentimentEntry> entries = lex.Entries();
  EXPECT_EQ(entries.size(), 2u);
}

// --- Pattern database --------------------------------------------------------------

TEST(PatternDbTest, EmbeddedLoadsAndIsLarge) {
  PatternDatabase db = PatternDatabase::Embedded();
  EXPECT_GT(db.size(), 150u);
  EXPECT_GT(db.predicate_count(), 90u);
}

TEST(PatternDbTest, ParseDirectPattern) {
  auto p = PatternDatabase::ParseLine("impress + PP(by;with)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->predicate, "impress");
  EXPECT_TRUE(p->direct);
  EXPECT_EQ(p->polarity, Polarity::kPositive);
  EXPECT_EQ(p->target.component, SentenceComponent::kPP);
  EXPECT_EQ(p->target.prepositions,
            (std::vector<std::string>{"by", "with"}));
}

TEST(PatternDbTest, ParseTransferPattern) {
  auto p = PatternDatabase::ParseLine("offer OP SP");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->direct);
  EXPECT_EQ(p->source.component, SentenceComponent::kOP);
  EXPECT_EQ(p->target.component, SentenceComponent::kSP);
  EXPECT_FALSE(p->flip_source);
}

TEST(PatternDbTest, ParseFlippedSource) {
  auto p = PatternDatabase::ParseLine("lack ~OP SP");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->flip_source);
}

TEST(PatternDbTest, ParseVoiceConstraint) {
  auto p = PatternDatabase::ParseLine("love + SP passive");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->voice, VoiceConstraint::kPassive);
  p = PatternDatabase::ParseLine("love + OP active");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->voice, VoiceConstraint::kActive);
}

TEST(PatternDbTest, ParseRejectsBadTarget) {
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP CP").ok());
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP VP").ok());
}

TEST(PatternDbTest, ParseRejectsBadComponent) {
  EXPECT_FALSE(PatternDatabase::ParseLine("be XX SP").ok());
}

TEST(PatternDbTest, ParseRejectsWrongArity) {
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP").ok());
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP SP passive extra").ok());
}

TEST(PatternDbTest, ParseRejectsBadVoice) {
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP SP sideways").ok());
}

TEST(PatternDbTest, ParseRejectsPrepositionsOnNonPp) {
  EXPECT_FALSE(PatternDatabase::ParseLine("be CP(x) SP").ok());
}

TEST(PatternDbTest, LookupByLemma) {
  PatternDatabase db = PatternDatabase::Embedded();
  const auto* patterns = db.Lookup("be");
  ASSERT_NE(patterns, nullptr);
  EXPECT_FALSE(patterns->empty());
  EXPECT_EQ(db.Lookup("zzz"), nullptr);
}

TEST(PatternDbTest, EveryEmbeddedPredicateIsALemma) {
  // The analyzer looks patterns up by VerbLemma(head verb); a predicate
  // stored in inflected form could never match.
  PatternDatabase db = PatternDatabase::Embedded();
  for (const std::string& predicate : db.Predicates()) {
    EXPECT_EQ(text::VerbLemma(predicate), predicate) << predicate;
  }
}

TEST(PatternDbTest, EmbeddedPatternsHaveConsistentComponents) {
  PatternDatabase db = PatternDatabase::Embedded();
  for (const std::string& predicate : db.Predicates()) {
    for (const SentimentPattern& p : *db.Lookup(predicate)) {
      // Targets are restricted by the parser contract.
      EXPECT_TRUE(p.target.component == SentenceComponent::kSP ||
                  p.target.component == SentenceComponent::kOP ||
                  p.target.component == SentenceComponent::kPP)
          << predicate;
      // Preposition constraints only appear on PP components.
      if (!p.target.prepositions.empty()) {
        EXPECT_EQ(p.target.component, SentenceComponent::kPP) << predicate;
      }
      if (!p.direct && !p.source.prepositions.empty()) {
        EXPECT_EQ(p.source.component, SentenceComponent::kPP) << predicate;
      }
    }
  }
}

TEST(PatternDbTest, LoadTextWithComments) {
  PatternDatabase db;
  ASSERT_TRUE(db.LoadText("# header\n"
                          "glorb + SP  # inline comment\n"
                          "\n"
                          "florp OP SP\n")
                  .ok());
  EXPECT_EQ(db.size(), 2u);
  ASSERT_NE(db.Lookup("glorb"), nullptr);
}

TEST(PatternDbTest, ComponentSpecPrepositionFilter) {
  ComponentSpec spec;
  spec.component = SentenceComponent::kPP;
  spec.prepositions = {"by", "with"};
  EXPECT_TRUE(spec.AllowsPreposition("by"));
  EXPECT_FALSE(spec.AllowsPreposition("about"));
  ComponentSpec any;
  EXPECT_TRUE(any.AllowsPreposition("anything"));
}

TEST(PatternDbTest, SentenceComponentNames) {
  EXPECT_EQ(SentenceComponentName(SentenceComponent::kSP), "SP");
  EXPECT_EQ(SentenceComponentName(SentenceComponent::kOP), "OP");
  EXPECT_EQ(SentenceComponentName(SentenceComponent::kCP), "CP");
  EXPECT_EQ(SentenceComponentName(SentenceComponent::kPP), "PP");
}

}  // namespace
}  // namespace wf::lexicon
