// Storage engine tests (DESIGN.md §13): varint coding, the LSM tree's
// tiered reads and compaction, corruption rejection at every byte,
// crash-at-every-op fuzz over the flush and compaction manifest swaps,
// frozen-index/ephemeral query equivalence, and the cluster-level
// crash → restart acceptance check with byte-identical answers.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "gtest/gtest.h"
#include "platform/cluster.h"
#include "platform/data_store.h"
#include "platform/entity.h"
#include "platform/indexer.h"
#include "obs/metrics.h"
#include "store/bloom.h"
#include "store/index_segment.h"
#include "store/lsm.h"
#include "store/segment.h"
#include "store/varint.h"

namespace wf {
namespace {

using ::wf::common::StorageFaultInjector;
using ::wf::platform::Cluster;
using ::wf::platform::DataStore;
using ::wf::platform::Entity;
using ::wf::platform::InvertedIndex;
using ::wf::store::LsmOptions;
using ::wf::store::LsmTree;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_("/tmp/wf_storage_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::string ReadAll(const std::string& path) {
  auto content = common::ReadFileToString(path);
  return content.ok() ? content.value() : std::string();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  // Raw stream on purpose: these tests simulate corruption themselves.
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << bytes;
}

// Every live (key, value) pair, via the merged sorted sweep.
std::map<std::string, std::string> Contents(const LsmTree& tree) {
  std::map<std::string, std::string> out;
  EXPECT_TRUE(tree.ForEachSorted([&out](const std::string& k,
                                        const std::string& v) {
                    out[k] = v;
                    return common::Status::Ok();
                  })
                  .ok());
  return out;
}

// Files in `dir`, by name.
std::set<std::string> DirFiles(const std::string& dir) {
  std::set<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    out.insert(entry.path().filename().string());
  }
  return out;
}

// --- varint -----------------------------------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,   1,   127, 128,  129,        16383,      16384,
      255, 300, 1u << 21,  (1u << 28) - 1,         1ull << 35,
      ~0ull};
  std::string buf;
  for (uint64_t v : values) store::PutVarint(v, &buf);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(store::GetVarint(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
  // A truncated buffer decodes cleanly up to the cut, then refuses.
  std::string torn = buf.substr(0, buf.size() - 1);
  pos = 0;
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    uint64_t got = 0;
    ASSERT_TRUE(store::GetVarint(torn, &pos, &got));
  }
  uint64_t got = 0;
  EXPECT_FALSE(store::GetVarint(torn, &pos, &got));
}

// --- BloomFilter ------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegativesAndFewFalsePositives) {
  store::BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("present-" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain("present-" + std::to_string(i)));
  }
  // ~10 bits/key with 6 probes targets <1% false positives; allow slack.
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("absent-" + std::to_string(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, 300);
}

TEST(BloomFilterTest, EmptyFilterAnswersDefinitelyAbsent) {
  store::BloomFilter unsized;
  EXPECT_TRUE(unsized.empty());
  EXPECT_FALSE(unsized.MayContain("anything"));
  store::BloomFilter sized(0);  // zero expected keys still gets a word
  EXPECT_FALSE(sized.MayContain("anything"));
}

TEST(SegmentBloomTest, WriterAndReopenedReaderBuildIdenticalFilters) {
  ScopedTempDir dir("bloom");
  std::vector<std::string> keys, values;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("key-" + std::to_string(1000 + i));
    values.push_back("value-" + std::to_string(i));
  }
  std::vector<store::SegmentRecord> records;
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], values[i], false});
  }
  store::BloomFilter written;
  ASSERT_TRUE(store::WriteSegmentFile(dir.File("b.wfseg"), records, nullptr,
                                      nullptr, &written)
                  .ok());
  auto reader = store::SegmentReader::Open(dir.File("b.wfseg"));
  ASSERT_TRUE(reader.ok());
  // Derived state must be deterministic: write-time and open-time filters
  // are bit-identical, and no stored key is ever ruled out.
  EXPECT_TRUE(written == reader.value()->bloom());
  for (const std::string& key : keys) {
    EXPECT_TRUE(reader.value()->MayContain(key));
    EXPECT_NE(reader.value()->Find(key), nullptr);
  }
}

TEST(LsmTreeTest, BloomSkipsSegmentProbesAndExportsCounters) {
  ScopedTempDir dir("bloom_lsm");
  obs::MetricsRegistry metrics;
  LsmOptions opts;
  opts.compaction_fanout = 0;  // keep every flushed segment
  LsmTree tree;
  tree.AttachMetrics(&metrics, "store/test");
  ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  // Three disjoint generations -> three segments; any point read probes
  // segments that mostly cannot hold the key.
  for (int gen = 0; gen < 3; ++gen) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          tree.Put("g" + std::to_string(gen) + "-" + std::to_string(i), "v")
              .ok());
    }
    ASSERT_TRUE(tree.Flush().ok());
  }
  ASSERT_EQ(tree.segment_count(), 3u);
  obs::Counter* hits = metrics.GetCounter("store/test/bloom_hits_total");
  obs::Counter* misses = metrics.GetCounter("store/test/bloom_misses_total");
  const uint64_t hits_before = hits->value();
  // Reads still answer correctly through the filter...
  for (int gen = 0; gen < 3; ++gen) {
    EXPECT_EQ(tree.Get("g" + std::to_string(gen) + "-25").value(), "v");
  }
  EXPECT_GT(misses->value(), 0u);
  // ...and absent-key reads are dominated by filter skips: 200 probes
  // over 3 segments would be 600 binary searches without the filter.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(tree.Contains("nowhere-" + std::to_string(i)));
  }
  EXPECT_GT(hits->value() - hits_before, 500u);
}

// --- LsmTree ----------------------------------------------------------------

TEST(LsmTreeTest, EphemeralBasics) {
  LsmTree tree;
  EXPECT_FALSE(tree.segmented());
  ASSERT_TRUE(tree.Insert("a", "1").ok());
  EXPECT_EQ(tree.Insert("a", "x").code(), common::StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree.Put("b", "2").ok());
  ASSERT_TRUE(tree.Put("b", "2b").ok());  // upsert replaces
  EXPECT_EQ(tree.Get("b").value(), "2b");
  EXPECT_TRUE(tree.Contains("a"));
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_TRUE(tree.Update("a", [](std::string* v) {
                    *v += "!";
                    return common::Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(tree.Get("a").value(), "1!");
  ASSERT_TRUE(tree.Delete("a").ok());
  EXPECT_EQ(tree.Delete("a").code(), common::StatusCode::kNotFound);
  EXPECT_EQ(tree.Get("a").status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(tree.size(), 1u);
  // Segment-mode operations refuse in ephemeral mode.
  EXPECT_EQ(tree.Flush().code(), common::StatusCode::kFailedPrecondition);
}

TEST(LsmTreeTest, SegmentedContentsSurviveReopen) {
  ScopedTempDir dir("reopen");
  LsmOptions opts;
  {
    LsmTree tree;
    ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
    EXPECT_TRUE(tree.segmented());
    ASSERT_TRUE(tree.Put("a", "1").ok());
    ASSERT_TRUE(tree.Put("b", "2").ok());
    ASSERT_TRUE(tree.Flush().ok());
    // A second generation: updates land over the frozen one.
    ASSERT_TRUE(tree.Put("b", "2b").ok());
    ASSERT_TRUE(tree.Put("c", "3").ok());
    ASSERT_TRUE(tree.Flush().ok());
    EXPECT_EQ(tree.flushes(), 2u);
  }
  LsmTree re;
  ASSERT_TRUE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  EXPECT_EQ(re.size(), 3u);
  EXPECT_EQ(re.Get("a").value(), "1");
  EXPECT_EQ(re.Get("b").value(), "2b");  // newest tier wins
  EXPECT_EQ(re.Get("c").value(), "3");
}

TEST(LsmTreeTest, TombstoneShadowsOlderSegmentsAcrossReopen) {
  ScopedTempDir dir("tombstone");
  LsmOptions opts;
  {
    LsmTree tree;
    ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
    ASSERT_TRUE(tree.Put("doomed", "v").ok());
    ASSERT_TRUE(tree.Put("keep", "v").ok());
    ASSERT_TRUE(tree.Flush().ok());
    ASSERT_TRUE(tree.Delete("doomed").ok());
    ASSERT_TRUE(tree.Flush().ok());  // the tombstone freezes into a segment
    EXPECT_FALSE(tree.Contains("doomed"));
  }
  LsmTree re;
  ASSERT_TRUE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  // The tombstone in the newer segment still shadows the older record.
  EXPECT_FALSE(re.Contains("doomed"));
  EXPECT_EQ(re.Get("doomed").status().code(), common::StatusCode::kNotFound);
  EXPECT_EQ(re.size(), 1u);
  // Deleting again is NotFound, not a resurrection.
  EXPECT_EQ(re.Delete("doomed").code(), common::StatusCode::kNotFound);
}

TEST(LsmTreeTest, MemtableCeilingBoundsMemoryAndAutoFlushes) {
  ScopedTempDir dir("ceiling");
  LsmOptions opts;
  opts.memtable_ceiling_bytes = 2048;
  LsmTree tree;
  ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  const std::string value(64, 'x');
  uint64_t high_water = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Put("key-" + std::to_string(i), value).ok());
    high_water = std::max(high_water, tree.memtable_bytes());
  }
  // The memtable never grows past the ceiling plus one record.
  EXPECT_LT(high_water, opts.memtable_ceiling_bytes + 256);
  EXPECT_GT(tree.flushes(), 5u);
  EXPECT_GE(tree.segment_count(), 1u);
  EXPECT_EQ(tree.size(), 500u);
  for (int i = 0; i < 500; i += 97) {
    EXPECT_EQ(tree.Get("key-" + std::to_string(i)).value(), value);
  }
}

TEST(LsmTreeTest, CompactionMergesRunsAndPreservesContent) {
  ScopedTempDir dir("compact");
  LsmOptions opts;
  opts.compaction_fanout = 2;
  LsmTree tree;
  ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  std::map<std::string, std::string> expect;
  for (int gen = 0; gen < 8; ++gen) {
    for (int i = 0; i < 10; ++i) {
      std::string key = "k" + std::to_string((gen * 7 + i) % 40);
      std::string value = "g" + std::to_string(gen);
      ASSERT_TRUE(tree.Put(key, value).ok());
      expect[key] = value;
    }
    if (gen % 3 == 1) {
      std::string key = "k" + std::to_string(gen);
      if (expect.count(key)) {
        ASSERT_TRUE(tree.Delete(key).ok());
        expect.erase(key);
      }
    }
    ASSERT_TRUE(tree.Flush().ok());
  }
  EXPECT_GT(tree.compactions(), 0u);
  // Size-tiered merging keeps the run count well under the flush count.
  EXPECT_LT(tree.segment_count(), 8u);
  EXPECT_EQ(Contents(tree), expect);
  // And a reopen from the compacted manifest agrees byte for byte.
  LsmTree re;
  ASSERT_TRUE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok());
  EXPECT_EQ(Contents(re), expect);
}

TEST(LsmTreeTest, CorruptSegmentOrManifestRejectedAtEveryByte) {
  ScopedTempDir dir("corrupt");
  LsmOptions opts;
  {
    LsmTree tree;
    ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, nullptr).ok());
    ASSERT_TRUE(tree.Put("alpha", "one").ok());
    ASSERT_TRUE(tree.Put("beta", "two").ok());
    ASSERT_TRUE(tree.Flush().ok());
  }
  for (const char* name : {"s-1.wfseg", "s.manifest"}) {
    const std::string path = dir.File(name);
    const std::string pristine = ReadAll(path);
    ASSERT_FALSE(pristine.empty()) << name;
    // Flip the low bit of every byte in turn: the checksummed envelope
    // must reject each one at open.
    for (size_t i = 0; i < pristine.size(); ++i) {
      std::string mutated = pristine;
      mutated[i] ^= 0x01;
      WriteRaw(path, mutated);
      LsmTree re;
      EXPECT_FALSE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok())
          << name << " byte " << i;
    }
    // Truncate at every length short of the full file.
    for (size_t len = 0; len < pristine.size(); len += 7) {
      WriteRaw(path, pristine.substr(0, len));
      LsmTree re;
      EXPECT_FALSE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok())
          << name << " truncated to " << len;
    }
    WriteRaw(path, pristine);
    LsmTree ok;
    ASSERT_TRUE(ok.OpenSegments(dir.path(), "s", opts, nullptr).ok()) << name;
  }
}

// Walks the flush protocol (segment write, manifest swap) through a crash
// at every durable op. After each simulated power loss, a fresh tree must
// come back with exactly the previously committed state — nothing lost,
// nothing resurrected, no stray files after the open's orphan sweep.
TEST(LsmTreeTest, FlushCrashAtEveryOpPreservesCommittedState) {
  LsmOptions opts;
  const std::map<std::string, std::string> committed = {{"a", "1"},
                                                        {"c", "3"}};
  std::map<std::string, std::string> full = committed;
  full["d"] = "4";
  full["e"] = "5";
  bool saw_crash = false;
  for (uint64_t crash_at = 0; crash_at < 32; ++crash_at) {
    ScopedTempDir dir("flushfuzz");
    StorageFaultInjector injector(/*seed=*/crash_at);
    LsmTree tree;
    ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, &injector).ok());
    // Committed generation: a and c live, b tombstoned into a segment.
    ASSERT_TRUE(tree.Put("a", "1").ok());
    ASSERT_TRUE(tree.Put("b", "2").ok());
    ASSERT_TRUE(tree.Put("c", "3").ok());
    ASSERT_TRUE(tree.Flush().ok());
    ASSERT_TRUE(tree.Delete("b").ok());
    ASSERT_TRUE(tree.Flush().ok());
    // New writes, then a flush that dies at durable op `crash_at`.
    ASSERT_TRUE(tree.Put("d", "4").ok());
    ASSERT_TRUE(tree.Put("e", "5").ok());
    injector.ArmOpCrash(dir.path(), crash_at);
    const common::Status flush = tree.Flush();
    const bool crashed = injector.counters().crashed > 0;
    injector.ClearCrashes();

    LsmTree re;
    ASSERT_TRUE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok())
        << "crash_at=" << crash_at;
    const auto contents = Contents(re);
    if (flush.ok()) {
      EXPECT_EQ(contents, full) << "crash_at=" << crash_at;
    } else {
      // The memtable is volatile by contract (the WAL above this layer
      // replays it); everything previously committed must be intact.
      EXPECT_EQ(contents, committed) << "crash_at=" << crash_at;
    }
    // b stays dead in every outcome.
    EXPECT_FALSE(re.Contains("b")) << "crash_at=" << crash_at;
    // The reopen swept any half-flushed orphan: all that remains is the
    // manifest and the segments it lists.
    std::set<std::string> files = DirFiles(dir.path());
    ASSERT_TRUE(files.count("s.manifest")) << "crash_at=" << crash_at;
    size_t seg_files = 0;
    for (const std::string& f : files) {
      EXPECT_TRUE(f == "s.manifest" || f.find(".wfseg") != std::string::npos)
          << "stray file " << f << " at crash_at=" << crash_at;
      if (f.find(".wfseg") != std::string::npos) ++seg_files;
    }
    EXPECT_EQ(seg_files, re.segment_count()) << "crash_at=" << crash_at;

    if (!crashed) {
      // The armed op was past the end of the protocol: every earlier
      // power-loss point has been walked. Done.
      EXPECT_TRUE(flush.ok());
      saw_crash = crash_at > 0;
      break;
    }
  }
  EXPECT_TRUE(saw_crash) << "fuzz never reached a crash-free run";
}

// Same walk over a flush that also triggers compaction (fanout 2, so the
// second flush merges). A crashed compaction must leave the pre-compaction
// segments fully readable — compaction is pure reorganization, so the
// logical contents never change regardless of where power dies.
TEST(LsmTreeTest, CompactionCrashAtEveryOpKeepsOldSegmentsIntact) {
  LsmOptions opts;
  opts.compaction_fanout = 2;
  const std::map<std::string, std::string> committed = {
      {"a", "1"}, {"c", "3"}, {"d", "4"}};
  std::map<std::string, std::string> full = committed;
  full["e"] = "5";
  full.erase("d");
  bool done = false;
  for (uint64_t crash_at = 0; crash_at < 32 && !done; ++crash_at) {
    ScopedTempDir dir("compactfuzz");
    StorageFaultInjector injector(/*seed=*/crash_at);
    LsmTree tree;
    ASSERT_TRUE(tree.OpenSegments(dir.path(), "s", opts, &injector).ok());
    ASSERT_TRUE(tree.Put("a", "1").ok());
    ASSERT_TRUE(tree.Put("b", "2").ok());
    ASSERT_TRUE(tree.Put("c", "3").ok());
    ASSERT_TRUE(tree.Put("d", "4").ok());
    ASSERT_TRUE(tree.Flush().ok());
    ASSERT_TRUE(tree.Delete("b").ok());
    ASSERT_TRUE(tree.Flush().ok());  // b's tombstone commits (and compacts)
    // This generation tombstones d and adds e; its flush creates a second
    // tier-0 segment and compaction merges the run.
    ASSERT_TRUE(tree.Delete("d").ok());
    ASSERT_TRUE(tree.Put("e", "5").ok());
    injector.ArmOpCrash(dir.path(), crash_at);
    const common::Status flush = tree.Flush();
    const bool crashed = injector.counters().crashed > 0;
    injector.ClearCrashes();

    LsmTree re;
    ASSERT_TRUE(re.OpenSegments(dir.path(), "s", opts, nullptr).ok())
        << "crash_at=" << crash_at;
    const auto contents = Contents(re);
    if (flush.ok()) {
      EXPECT_EQ(contents, full) << "crash_at=" << crash_at;
    } else {
      // Either the flush committed (memtable generation durable, maybe
      // with the compaction half-done and rolled back) or it did not.
      // Both are consistent states; b and d must never come back once
      // their tombstones committed.
      const bool is_full = contents == full;
      const bool is_committed = contents == committed;
      EXPECT_TRUE(is_full || is_committed)
          << "crash_at=" << crash_at << " left an inconsistent state";
    }
    EXPECT_FALSE(re.Contains("b")) << "crash_at=" << crash_at;
    if (!crashed) {
      EXPECT_TRUE(flush.ok());
      EXPECT_GT(tree.compactions(), 0u);
      done = true;
    }
  }
  EXPECT_TRUE(done) << "fuzz never reached a crash-free run";
}

// --- frozen index tiers -----------------------------------------------------

Entity ReviewEntity(const std::string& id, const std::string& body,
                    double rating) {
  Entity e(id, "reviews");
  e.SetBody(body);
  e.SetField("rating", std::to_string(rating));
  return e;
}

// Drives the same logical sequence into an ephemeral index and a tiered
// one (frozen mid-way, twice, with compaction fanout 2), then demands
// identical answers from every query type and byte-identical Save output.
TEST(FrozenIndexTest, TieredIndexAnswersExactlyLikeEphemeral) {
  ScopedTempDir dir("frozen_equiv");
  InvertedIndex plain;
  InvertedIndex tiered;
  ASSERT_TRUE(tiered
                  .EnableSegments(dir.path(), "idx", /*injector=*/nullptr,
                                  /*compaction_fanout=*/2)
                  .ok());

  auto both = [&](const std::function<void(InvertedIndex&)>& fn) {
    fn(plain);
    fn(tiered);
  };

  both([](InvertedIndex& idx) {
    idx.IndexEntity(ReviewEntity("d1", "the battery life is great", 4.5));
    idx.IndexEntity(ReviewEntity("d2", "battery drains fast and hot", 2.0));
  });
  ASSERT_TRUE(tiered.Freeze().ok());  // tier 1: d1, d2 full
  both([](InvertedIndex& idx) {
    idx.IndexEntity(ReviewEntity("d3", "screen is great but battery poor",
                                 3.0));
    // Incremental touches on a frozen doc: must merge, not shadow.
    idx.AddConceptToken("d1", "Sentiment/Positive");
    idx.AddFieldValue("d1", "helpfulness", 10);
  });
  ASSERT_TRUE(tiered.Freeze().ok());  // tier 2 → compaction (fanout 2)
  both([](InvertedIndex& idx) {
    // A full re-index of a frozen doc: the new version must shadow every
    // older tier.
    idx.IndexEntity(ReviewEntity("d2", "replacement unit works great", 5.0));
    idx.IndexEntity(ReviewEntity("d4", "no complaints", 4.0));
  });
  // d4 and the d2 re-index stay in the delta tier: queries must merge
  // delta over frozen correctly.

  auto expect_same = [&](const char* what,
                         const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
    EXPECT_EQ(a, b) << what;
  };
  for (const std::string term :
       {"battery", "great", "fast", "screen", "sentiment/positive",
        "missing"}) {
    expect_same(("Term " + term).c_str(), plain.Term(term),
                tiered.Term(term));
  }
  expect_same("And", plain.And({"battery", "great"}),
              tiered.And({"battery", "great"}));
  expect_same("Or", plain.Or({"screen", "fast"}),
              tiered.Or({"screen", "fast"}));
  expect_same("Not", plain.Not("great", "battery"),
              tiered.Not("great", "battery"));
  expect_same("Phrase", plain.Phrase({"battery", "life"}),
              tiered.Phrase({"battery", "life"}));
  expect_same("Phrase2", plain.Phrase({"works", "great"}),
              tiered.Phrase({"works", "great"}));
  expect_same("Prefix", plain.Prefix("bat"), tiered.Prefix("bat"));
  expect_same("Regex", plain.MatchRegex("dra.*|scr.*"),
              tiered.MatchRegex("dra.*|scr.*"));
  expect_same("Range", plain.Range("rating", 3.0, 5.0),
              tiered.Range("rating", 3.0, 5.0));
  expect_same("RangeTouch", plain.Range("helpfulness", 5, 15),
              tiered.Range("helpfulness", 5, 15));
  EXPECT_EQ(plain.TermFrequency("battery", "d1"),
            tiered.TermFrequency("battery", "d1"));
  EXPECT_EQ(plain.TermFrequency("battery", "d2"),
            tiered.TermFrequency("battery", "d2"));  // shadowed by re-index
  EXPECT_EQ(plain.document_count(), tiered.document_count());
  EXPECT_EQ(plain.vocabulary_size(), tiered.vocabulary_size());
  EXPECT_EQ(plain.VocabularyWithPrefix("b"), tiered.VocabularyWithPrefix("b"));

  // The canonical snapshot is a pure function of logical content: the
  // tier layout must not leak into the bytes.
  ASSERT_TRUE(plain.Save(dir.File("plain.idx")).ok());
  ASSERT_TRUE(tiered.Save(dir.File("tiered.idx")).ok());
  EXPECT_EQ(ReadAll(dir.File("plain.idx")), ReadAll(dir.File("tiered.idx")));
}

TEST(FrozenIndexTest, FrozenTiersSurviveReopen) {
  ScopedTempDir dir("frozen_reopen");
  {
    InvertedIndex idx;
    ASSERT_TRUE(idx.EnableSegments(dir.path(), "idx").ok());
    idx.IndexEntity(ReviewEntity("d1", "battery life is great", 4.0));
    idx.IndexEntity(ReviewEntity("d2", "poor battery", 1.5));
    ASSERT_TRUE(idx.Freeze().ok());
    EXPECT_EQ(idx.frozen_segment_count(), 1u);
  }
  InvertedIndex re;
  ASSERT_TRUE(re.EnableSegments(dir.path(), "idx").ok());
  EXPECT_EQ(re.frozen_segment_count(), 1u);
  EXPECT_EQ(re.document_count(), 2u);
  EXPECT_EQ(re.Term("battery"), (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(re.Phrase({"battery", "life"}),
            (std::vector<std::string>{"d1"}));
  EXPECT_EQ(re.Range("rating", 3.0, 5.0), (std::vector<std::string>{"d1"}));
  // Load is refused once the manifest owns disk state.
  EXPECT_EQ(re.Load(dir.File("whatever")).code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(FrozenIndexTest, FreezeCrashAtEveryOpPreservesCommittedTiers) {
  bool done = false;
  for (uint64_t crash_at = 0; crash_at < 16 && !done; ++crash_at) {
    ScopedTempDir dir("freezefuzz");
    StorageFaultInjector injector(/*seed=*/crash_at);
    InvertedIndex idx;
    ASSERT_TRUE(idx.EnableSegments(dir.path(), "idx", &injector).ok());
    idx.IndexEntity(ReviewEntity("d1", "battery life", 4.0));
    ASSERT_TRUE(idx.Freeze().ok());
    idx.IndexEntity(ReviewEntity("d2", "screen glare", 2.0));
    injector.ArmOpCrash(dir.path(), crash_at);
    const common::Status freeze = idx.Freeze();
    const bool crashed = injector.counters().crashed > 0;
    injector.ClearCrashes();

    InvertedIndex re;
    ASSERT_TRUE(re.EnableSegments(dir.path(), "idx").ok())
        << "crash_at=" << crash_at;
    // The committed tier always answers; the second generation only if
    // its manifest swap went through.
    EXPECT_EQ(re.Term("battery"), (std::vector<std::string>{"d1"}))
        << "crash_at=" << crash_at;
    if (freeze.ok()) {
      EXPECT_EQ(re.Term("screen"), (std::vector<std::string>{"d2"}))
          << "crash_at=" << crash_at;
    }
    if (!crashed) {
      EXPECT_TRUE(freeze.ok());
      done = true;
    }
  }
  EXPECT_TRUE(done) << "fuzz never reached a crash-free run";
}

// --- DataStore over segments ------------------------------------------------

TEST(DataStoreSegmentsTest, HoldsHundredXCorpusWithBoundedMemtable) {
  // 100x the seed corpus (60k+ entities) against a 32 KiB memtable: the
  // shard must stay correct while only a sliver of it is in RAM.
  ScopedTempDir dir("hundredx");
  LsmOptions opts;
  opts.memtable_ceiling_bytes = 32 << 10;
  DataStore ds;
  ASSERT_TRUE(ds.EnableSegments(dir.path(), "store", opts).ok());
  const size_t kEntities = 60'000;
  uint64_t high_water = 0;
  for (size_t i = 0; i < kEntities; ++i) {
    Entity e("doc-" + std::to_string(i), "corpus");
    e.SetBody("review body number " + std::to_string(i));
    ASSERT_TRUE(ds.Upsert(std::move(e)).ok());
    high_water = std::max(high_water, ds.memtable_bytes());
  }
  EXPECT_LT(high_water, opts.memtable_ceiling_bytes + 1024);
  EXPECT_EQ(ds.size(), kEntities);
  EXPECT_GT(ds.flushes(), 10u);
  EXPECT_GT(ds.compactions(), 0u);
  // Compaction keeps the run count logarithmic-ish, not linear in flushes.
  EXPECT_LT(ds.segment_count(), ds.flushes());
  for (size_t i = 0; i < kEntities; i += 9973) {
    auto got = ds.Get("doc-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got.value().body(), "review body number " + std::to_string(i));
  }
  // Ids() walks the in-RAM key indexes only — still the full sorted set.
  std::vector<std::string> ids = ds.Ids();
  EXPECT_EQ(ids.size(), kEntities);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// --- cluster acceptance -----------------------------------------------------

Entity ClusterEntity(const std::string& id, const std::string& body) {
  Entity e(id, "acceptance");
  e.SetBody(body);
  return e;
}

// Kill a node and bring it back from its segments + WAL: the restarted
// cluster must answer queries identically, and the recovered shard's
// canonical snapshots must be byte-identical to the pre-crash ones.
TEST(ClusterStorageTest, CrashRestartAnswersByteIdentically) {
  ScopedTempDir dir("cluster_accept");
  Cluster cluster(3);
  Cluster::DurabilityOptions dopts;
  dopts.dir = dir.path();
  dopts.lsm.memtable_ceiling_bytes = 4096;  // force real segment traffic
  ASSERT_TRUE(cluster.EnableDurability(dopts).ok());
  const std::vector<std::string> bodies = {
      "battery life is great",      "screen has glare issues",
      "battery drains overnight",   "keyboard feels solid",
      "great value for the price",  "battery replacement was easy",
      "glare ruins outdoor use",    "solid build and great screen",
  };
  for (size_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(cluster
                    .Ingest(ClusterEntity("rev-" + std::to_string(i),
                                          bodies[i % bodies.size()]))
                    .ok());
  }
  cluster.MineAndIndexAll();
  ASSERT_TRUE(cluster.CheckpointAll().ok());

  const std::vector<std::string> terms = {"battery", "great", "glare",
                                          "solid", "screen"};
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& t : terms) {
    platform::SearchResult r = cluster.Search(t);
    ASSERT_TRUE(r.complete());
    before[t] = r.docs;
  }
  ASSERT_TRUE(cluster.Search("battery").docs.size() > 0);
  // Canonical snapshots of shard 0 before the crash.
  // (Save is a pure function of logical content, so the restarted shard —
  // whatever segment layout recovery left it with — must match exactly.)
  ASSERT_TRUE(cluster.node(0).store().Save(dir.File("before.store")).ok());
  ASSERT_TRUE(cluster.node(0).index().Save(dir.File("before.idx")).ok());

  ASSERT_TRUE(cluster.CrashNode(0).ok());
  EXPECT_FALSE(cluster.Search("battery").complete());
  ASSERT_TRUE(cluster.RestartNode(0).ok());

  for (const std::string& t : terms) {
    platform::SearchResult r = cluster.Search(t);
    EXPECT_TRUE(r.complete()) << t;
    EXPECT_EQ(r.docs, before[t]) << t;
  }
  ASSERT_TRUE(cluster.node(0).store().Save(dir.File("after.store")).ok());
  ASSERT_TRUE(cluster.node(0).index().Save(dir.File("after.idx")).ok());
  EXPECT_EQ(ReadAll(dir.File("before.store")), ReadAll(dir.File("after.store")));
  EXPECT_EQ(ReadAll(dir.File("before.idx")), ReadAll(dir.File("after.idx")));
}

}  // namespace
}  // namespace wf
