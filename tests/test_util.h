#ifndef WF_TESTS_TEST_UTIL_H_
#define WF_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/arena.h"
#include "common/string_util.h"
#include "core/analyzer.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::testing {

// One-stop pipeline for tests: tokenize, split, tag, and parse a document,
// then analyze sentiment about `subject` (first occurrence, case
// insensitive, possibly multi-token).
class Pipeline {
 public:
  Pipeline()
      : lexicon_(lexicon::SentimentLexicon::Embedded()),
        patterns_(lexicon::PatternDatabase::Embedded()) {}

  explicit Pipeline(const core::AnalyzerOptions& options)
      : lexicon_(lexicon::SentimentLexicon::Embedded()),
        patterns_(lexicon::PatternDatabase::Embedded()),
        options_(options) {}

  // Polarity assigned to `subject` in `sentence` (the first sentence
  // containing the subject is used).
  lexicon::Polarity Analyze(const std::string& sentence,
                            const std::string& subject) const {
    return AnalyzeDetailed(sentence, subject).polarity;
  }

  core::SubjectSentiment AnalyzeDetailed(const std::string& sentence,
                                         const std::string& subject) const {
    text::TokenStream tokens = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);

    // Find the subject's token range.
    text::TokenStream subj = tokenizer_.Tokenize(subject);
    for (const text::SentenceSpan& span : spans) {
      for (size_t i = span.begin_token; i + subj.size() <= span.end_token;
           ++i) {
        bool match = true;
        for (size_t k = 0; k < subj.size(); ++k) {
          if (!common::EqualsIgnoreCase(tokens[i + k].text, subj[k].text)) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, span);
        std::vector<parse::SentenceParse> clauses =
            sentence_analyzer_.AnalyzeClauses(tokens, span, tags, &interner_);
        const parse::SentenceParse* parse = &clauses.front();
        for (const parse::SentenceParse& c : clauses) {
          if (i >= c.span.begin_token && i < c.span.end_token) {
            parse = &c;
            break;
          }
        }
        core::SentimentAnalyzer analyzer(&lexicon_, &patterns_, options_);
        return analyzer.AnalyzeSubject(tokens, *parse, i, i + subj.size());
      }
    }
    return core::SubjectSentiment{};
  }

  // Full parse of the first sentence (for parser tests).
  parse::SentenceParse Parse(const std::string& sentence) const {
    text::TokenStream tokens = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, spans[0]);
    return sentence_analyzer_.Analyze(tokens, spans[0], tags, &interner_);
  }

  const lexicon::SentimentLexicon& lexicon() const { return lexicon_; }
  const lexicon::PatternDatabase& patterns() const { return patterns_; }

 private:
  lexicon::SentimentLexicon lexicon_;
  lexicon::PatternDatabase patterns_;
  core::AnalyzerOptions options_;
  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  parse::SentenceAnalyzer sentence_analyzer_;
  // Parse-string storage: returned parses hold views into this arena, so it
  // lives as long as the Pipeline. Mutable because analysis is const.
  mutable common::Arena arena_;
  mutable common::StringInterner interner_{&arena_};
};

}  // namespace wf::testing

#endif  // WF_TESTS_TEST_UTIL_H_
