// Load-generator suite: the kilo-user generator that drives bench_serving
// (DESIGN.md §14). Covers the coverage/determinism contract (every session
// issues exactly requests_per_session queries, with a seed-determined
// subject sequence independent of the worker count), the reply
// classification (ok / shed-by-reason / error / cache / coalesced), and
// the BENCH_serving.json shape produced by the bench writer.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/loadgen.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "serve/front_door.h"
#include "tests/json_checker.h"

namespace wf::bench {
namespace {

using ::wf::common::Status;
using ::wf::serve::QueryReply;
using ::wf::serve::QueryRequest;
using ::wf::serve::ShedReason;

// With no subject list every request is the session's unique cold subject
// "cold-<id>-<issued>", which makes full coverage directly observable.
std::set<std::string> RunAndCollect(size_t workers, LoadGenStats* stats) {
  LoadGenOptions options;
  options.sessions = 50;
  options.requests_per_session = 3;
  options.workers = workers;
  options.open_loop_fraction = 0.5;
  options.mean_think_us = 100;
  options.mean_interarrival_us = 100;
  LoadGenWorkload workload;  // subjects empty -> all cold

  std::mutex mu;
  std::set<std::string> seen;
  *stats = RunLoadGen(options, workload, [&](const QueryRequest& request) {
    {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(request.subject);
    }
    QueryReply reply;  // default status is ok
    return reply;
  });
  return seen;
}

TEST(LoadGenTest, EverySessionIssuesItsFullSeededSchedule) {
  LoadGenStats stats;
  std::set<std::string> seen = RunAndCollect(/*workers=*/4, &stats);

  EXPECT_EQ(stats.sessions, 50u);
  EXPECT_EQ(stats.open_sessions, 25u);
  EXPECT_EQ(stats.closed_sessions, 25u);
  EXPECT_EQ(stats.requests, 150u);
  EXPECT_EQ(stats.ok, 150u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
  ASSERT_EQ(stats.latencies_us.size(), 150u);
  EXPECT_TRUE(std::is_sorted(stats.latencies_us.begin(),
                             stats.latencies_us.end()));
  EXPECT_LE(stats.PercentileUs(0.5), stats.PercentileUs(0.99));
  EXPECT_GT(stats.GoodputPerSec(), 0.0);

  // Exact coverage: all 50 sessions x 3 requests, no dupes, no gaps.
  std::set<std::string> expected;
  for (int id = 0; id < 50; ++id) {
    for (int issued = 0; issued < 3; ++issued) {
      expected.insert("cold-" + std::to_string(id) + "-" +
                      std::to_string(issued));
    }
  }
  EXPECT_EQ(seen, expected);

  // The issued set is a function of the seed alone — the worker count only
  // changes the interleaving.
  LoadGenStats solo_stats;
  std::set<std::string> solo = RunAndCollect(/*workers=*/1, &solo_stats);
  EXPECT_EQ(solo, seen);
  EXPECT_EQ(solo_stats.requests, stats.requests);
}

TEST(LoadGenTest, RepliesAreClassifiedByShedReason) {
  LoadGenOptions options;
  options.sessions = 40;
  options.requests_per_session = 2;
  options.workers = 4;
  options.mean_think_us = 0;
  options.mean_interarrival_us = 0;
  LoadGenWorkload workload;  // all cold -> subject encodes the session id

  // The fake door routes on session id: ok / queue-full / quota / plain
  // error, round-robin by id. 10 sessions (20 requests) land in each bin.
  LoadGenStats stats =
      RunLoadGen(options, workload, [](const QueryRequest& request) {
        const size_t id = static_cast<size_t>(
            std::stoul(request.subject.substr(5)));  // "cold-<id>-<issued>"
        QueryReply reply;
        switch (id % 4) {
          case 0:
            reply.cache_hit = true;
            break;
          case 1:
            reply.status = Status::Unavailable("queue full");
            reply.shed_reason = ShedReason::kQueueFull;
            reply.retry_after_us = 1000;
            break;
          case 2:
            reply.status = Status::Unavailable("quota");
            reply.shed_reason = ShedReason::kQuotaExceeded;
            break;
          default:
            reply.status = Status::Internal("backend exploded");
            break;
        }
        return reply;
      });

  EXPECT_EQ(stats.requests, 80u);
  EXPECT_EQ(stats.ok, 20u);
  EXPECT_EQ(stats.cache_hits, 20u);
  EXPECT_EQ(stats.shed, 40u);
  EXPECT_EQ(stats.shed_queue_full, 20u);
  EXPECT_EQ(stats.shed_quota, 20u);
  EXPECT_EQ(stats.shed_deadline, 0u);
  EXPECT_EQ(stats.errors, 20u);
  EXPECT_EQ(stats.latencies_us.size(), 80u);
}

// The bench writer output that bench_serving ships (BENCH_serving.json)
// must stay machine-readable: same sections and field spellings, and
// strict-JSON valid per the shared checker.
TEST(LoadGenTest, ServingBenchJsonShapeIsValid) {
  LoadGenOptions options;
  options.sessions = 30;
  options.requests_per_session = 2;
  options.workers = 2;
  options.mean_think_us = 100;
  options.mean_interarrival_us = 100;
  LoadGenWorkload workload;
  workload.subjects = {"Kodak", "Xerox"};

  LoadGenStats stats = RunLoadGen(options, workload, [](const QueryRequest&) {
    QueryReply reply;
    return reply;
  });

  BenchJsonWriter writer("serving");
  writer.AddRow("config",
                {Int("sessions", options.sessions),
                 Int("workers", options.workers),
                 Num("open_loop_fraction", options.open_loop_fraction)});
  writer.AddRow("phases",
                {Str("phase", "smoke"), Num("load_factor", 1.0),
                 Int("sessions", stats.sessions),
                 Int("requests", stats.requests), Int("ok", stats.ok),
                 Int("shed", stats.shed), Int("errors", stats.errors),
                 Int("cache_hits", stats.cache_hits),
                 Int("coalesced", stats.coalesced),
                 Int("p50_us", stats.PercentileUs(0.5)),
                 Int("p99_us", stats.PercentileUs(0.99)),
                 Num("goodput_per_sec", stats.GoodputPerSec())});
  writer.AddRow("totals", {Int("sessions", stats.sessions),
                           Int("requests", stats.requests)});
  const std::string json = writer.ToJson();
  EXPECT_TRUE(wf::testing::JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"goodput_per_sec\""), std::string::npos);

  // And the on-disk artifact the bench actually ships parses too.
  ASSERT_EQ(setenv("WF_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1), 0);
  const std::string path = writer.WriteFile();
  ASSERT_EQ(unsetenv("WF_BENCH_JSON_DIR"), 0);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(wf::testing::JsonChecker::Valid(buffer.str()));
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

}  // namespace
}  // namespace wf::bench
