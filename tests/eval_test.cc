#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace wf::eval {
namespace {

using lexicon::Polarity;

// --- Confusion metrics --------------------------------------------------------------

TEST(ConfusionTest, EmptyIsZero) {
  Confusion c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_NEAR(c.precision(), 0.0, 1e-12);
  EXPECT_NEAR(c.recall(), 0.0, 1e-12);
  EXPECT_NEAR(c.accuracy(), 0.0, 1e-12);
}

TEST(ConfusionTest, PerfectPredictions) {
  Confusion c;
  c.Add(Polarity::kPositive, Polarity::kPositive);
  c.Add(Polarity::kNegative, Polarity::kNegative);
  c.Add(Polarity::kNeutral, Polarity::kNeutral);
  EXPECT_NEAR(c.precision(), 1.0, 1e-12);
  EXPECT_NEAR(c.recall(), 1.0, 1e-12);
  EXPECT_NEAR(c.accuracy(), 1.0, 1e-12);
  EXPECT_NEAR(c.f1(), 1.0, 1e-12);
}

TEST(ConfusionTest, PaperMetricDefinitions) {
  Confusion c;
  // 2 correct polar extractions.
  c.Add(Polarity::kPositive, Polarity::kPositive);
  c.Add(Polarity::kNegative, Polarity::kNegative);
  // 1 wrong-polarity extraction.
  c.Add(Polarity::kPositive, Polarity::kNegative);
  // 1 missed polar case.
  c.Add(Polarity::kNegative, Polarity::kNeutral);
  // 1 false extraction on a neutral-gold case.
  c.Add(Polarity::kNeutral, Polarity::kPositive);
  // 5 correctly-neutral cases.
  for (int i = 0; i < 5; ++i) c.Add(Polarity::kNeutral, Polarity::kNeutral);

  EXPECT_EQ(c.total(), 10u);
  EXPECT_EQ(c.gold_polar(), 4u);
  EXPECT_EQ(c.extracted(), 4u);
  EXPECT_EQ(c.correct_polar(), 2u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);   // 2 of 4 extractions correct
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);      // 2 of 4 polar golds found
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.7);    // 2 + 5 of 10 exact
}

TEST(ConfusionTest, MergeAddsCounts) {
  Confusion a, b;
  a.Add(Polarity::kPositive, Polarity::kPositive);
  b.Add(Polarity::kNegative, Polarity::kNegative);
  b.Add(Polarity::kNeutral, Polarity::kPositive);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.correct_polar(), 2u);
}

TEST(ConfusionTest, CountAccessor) {
  Confusion c;
  c.Add(Polarity::kPositive, Polarity::kNegative);
  EXPECT_EQ(c.count(Polarity::kPositive, Polarity::kNegative), 1u);
  EXPECT_EQ(c.count(Polarity::kNegative, Polarity::kPositive), 0u);
}

TEST(MetricsTest, PctFormatting) {
  EXPECT_EQ(Pct(0.873), "87.3");
  EXPECT_EQ(Pct(1.0), "100.0");
  EXPECT_EQ(Pct(0.0), "0.0");
}

// --- TablePrinter -------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "Bee"});
  t.AddRow({"longer", "x"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| A      | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| longer | x   |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"only"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(TablePrinterTest, RuleInsertsSeparator) {
  TablePrinter t({"A"});
  t.AddRow({"x"});
  t.AddRule();
  t.AddRow({"y"});
  std::string out = t.ToString();
  // header rule + top + bottom + explicit = 4 separators
  size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(ReportTest, BannerContainsTitle) {
  std::string b = Banner("Table 4");
  EXPECT_NE(b.find("Table 4"), std::string::npos);
  EXPECT_NE(b.find("="), std::string::npos);
}

// --- GoldEvaluator plumbing ------------------------------------------------------------

TEST(GoldEvaluatorTest, ScoresHandWrittenDoc) {
  corpus::GeneratedDoc doc;
  doc.id = "hand";
  doc.domain = "camera";
  doc.body =
      "The battery is excellent. The flash is terrible. "
      "The zoom arrived on Tuesday.";
  doc.golds = {
      {"battery", 0, Polarity::kPositive, false, 'A'},
      {"flash", 1, Polarity::kNegative, false, 'A'},
      {"zoom", 2, Polarity::kNeutral, true, 'C'},
  };

  GoldEvaluator evaluator;
  EvalOptions options;
  Confusion c = evaluator.EvaluateMiner({doc}, options);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.correct_polar(), 2u);
  EXPECT_NEAR(c.accuracy(), 1.0, 1e-12);
}

TEST(GoldEvaluatorTest, SkipIClassDropsCases) {
  corpus::GeneratedDoc doc;
  doc.id = "hand";
  doc.body = "The battery is excellent. The zoom arrived on Tuesday.";
  doc.golds = {
      {"battery", 0, Polarity::kPositive, false, 'A'},
      {"zoom", 1, Polarity::kNeutral, true, 'C'},
  };
  GoldEvaluator evaluator;
  EvalOptions skip;
  skip.skip_i_class = true;
  EXPECT_EQ(evaluator.EvaluateMiner({doc}, skip).total(), 1u);
}

TEST(GoldEvaluatorTest, PluralSurfaceResolved) {
  corpus::GeneratedDoc doc;
  doc.id = "hand";
  doc.body = "The batteries are excellent.";
  doc.golds = {{"battery", 0, Polarity::kPositive, false, 'A'}};
  GoldEvaluator evaluator;
  Confusion c = evaluator.EvaluateMiner({doc}, EvalOptions{});
  EXPECT_EQ(c.total(), 1u);
  EXPECT_EQ(c.correct_polar(), 1u);
}

TEST(GoldEvaluatorTest, OutOfRangeSentenceSkipped) {
  corpus::GeneratedDoc doc;
  doc.id = "hand";
  doc.body = "Only one sentence.";
  doc.golds = {{"missing", 9, Polarity::kPositive, false, 'A'}};
  GoldEvaluator evaluator;
  EXPECT_EQ(evaluator.EvaluateMiner({doc}, EvalOptions{}).total(), 0u);
}

}  // namespace
}  // namespace wf::eval
