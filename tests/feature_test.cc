#include <gtest/gtest.h>

#include "feature/bbnp.h"
#include "feature/feature_extractor.h"
#include "feature/likelihood_ratio.h"
#include "feature/selection.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::feature {
namespace {

// --- Likelihood ratio --------------------------------------------------------------

TEST(LlrTest, ZeroWhenNotAssociated) {
  // r2 >= r1: term under-represented among D+ docs -> 0 by Eq. 1.
  ContingencyCounts c{/*c11=*/1, /*c12=*/50, /*c21=*/100, /*c22=*/50};
  EXPECT_NEAR(LogLikelihoodRatio(c), 0.0, 1e-12);
}

TEST(LlrTest, PositiveWhenAssociated) {
  ContingencyCounts c{/*c11=*/40, /*c12=*/2, /*c21=*/60, /*c22=*/198};
  EXPECT_GT(LogLikelihoodRatio(c), 0.0);
}

TEST(LlrTest, IndependentTermScoresNearZero) {
  // Term present in the same proportion of D+ and D- documents.
  ContingencyCounts c{/*c11=*/50, /*c12=*/100, /*c21=*/50, /*c22=*/100};
  EXPECT_NEAR(LogLikelihoodRatio(c), 0.0, 1e-9);
}

TEST(LlrTest, MonotoneInAssociationStrength) {
  // More concentrated in D+ -> larger statistic.
  ContingencyCounts weak{30, 20, 70, 180};
  ContingencyCounts strong{45, 5, 55, 195};
  EXPECT_GT(LogLikelihoodRatio(strong), LogLikelihoodRatio(weak));
}

TEST(LlrTest, ScalesWithSampleSize) {
  ContingencyCounts small{10, 1, 10, 19};
  ContingencyCounts big{100, 10, 100, 190};
  EXPECT_GT(LogLikelihoodRatio(big), LogLikelihoodRatio(small));
}

TEST(LlrTest, DegenerateCounts) {
  EXPECT_NEAR(LogLikelihoodRatio(ContingencyCounts{0, 0, 0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(LogLikelihoodRatio(ContingencyCounts{0, 0, 10, 10}), 0.0, 1e-12);
  // Term in every doc.
  EXPECT_NEAR(LogLikelihoodRatio(ContingencyCounts{10, 10, 0, 0}), 0.0, 1e-12);
}

TEST(LlrTest, NeverNegative) {
  for (uint64_t c11 : {0, 5, 20}) {
    for (uint64_t c12 : {0, 5, 20}) {
      ContingencyCounts c{c11, c12, 30, 30};
      EXPECT_GE(LogLikelihoodRatio(c), 0.0);
    }
  }
}

TEST(LlrTest, PerfectAssociationIsLarge) {
  // Term in all 100 D+ docs and no D- doc.
  ContingencyCounts c{100, 0, 0, 300};
  EXPECT_GT(LogLikelihoodRatio(c), 100.0);
}

// --- bBNP heuristic -----------------------------------------------------------------

class BbnpTest : public ::testing::Test {
 protected:
  std::vector<std::string> Extract(const std::string& sentence) {
    text::TokenStream tokens = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, spans[0]);
    std::vector<std::string> phrases;
    for (const BbnpExtractor::Candidate& c :
         extractor_.ExtractSentence(tokens, spans[0], tags)) {
      phrases.push_back(c.phrase);
    }
    return phrases;
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  BbnpExtractor extractor_;
};

TEST_F(BbnpTest, SingleNoun) {
  EXPECT_EQ(Extract("The battery lasts forever."),
            (std::vector<std::string>{"battery"}));
}

TEST_F(BbnpTest, NounNoun) {
  EXPECT_EQ(Extract("The picture quality is stunning."),
            (std::vector<std::string>{"picture quality"}));
}

TEST_F(BbnpTest, HeadPluralNormalized) {
  EXPECT_EQ(Extract("The batteries are weak."),
            (std::vector<std::string>{"battery"}));
}

TEST_F(BbnpTest, RequiresDefiniteArticle) {
  EXPECT_TRUE(Extract("A battery lasts forever.").empty());
  EXPECT_TRUE(Extract("This battery lasts forever.").empty());
}

TEST_F(BbnpTest, RequiresSentenceInitialPosition) {
  EXPECT_TRUE(Extract("Overall, the battery lasts forever.").empty());
}

TEST_F(BbnpTest, RequiresFollowingVerbPhrase) {
  // Definite NP followed by a preposition, not a VP.
  EXPECT_TRUE(Extract("The battery in the camera.").empty());
}

TEST_F(BbnpTest, AdverbBeforeVerbAllowed) {
  EXPECT_EQ(Extract("The viewfinder really shines."),
            (std::vector<std::string>{"viewfinder"}));
}

TEST_F(BbnpTest, ModalCountsAsVerbPhrase) {
  EXPECT_EQ(Extract("The menu could be simpler."),
            (std::vector<std::string>{"menu"}));
}

TEST_F(BbnpTest, LongestPatternWins) {
  // NN NN NN (memory card slot) preferred over shorter prefixes.
  EXPECT_EQ(Extract("The memory card slot jams."),
            (std::vector<std::string>{"memory card slot"}));
}

TEST_F(BbnpTest, TooShortSentence) {
  EXPECT_TRUE(Extract("The battery.").empty());
}

// --- FeatureExtractor end-to-end -------------------------------------------------------

TEST(FeatureExtractorTest, FindsRecurringTopicTerms) {
  FeatureExtractor::Options options;
  options.min_df = 2;
  options.min_score = 3.0;
  FeatureExtractor extractor(options);

  // D+: documents about a gadget with a recurring "battery" aspect.
  for (int i = 0; i < 20; ++i) {
    extractor.AddDocument(
        "The battery lasts all day. The screen works well. I liked it.",
        /*on_topic=*/true);
  }
  // D-: off-topic docs; "day" recurs here too, so it is not topical.
  for (int i = 0; i < 40; ++i) {
    extractor.AddDocument(
        "The day went fine. We walked to the lake and had dinner.",
        /*on_topic=*/false);
  }

  std::vector<FeatureTerm> terms = extractor.Extract();
  ASSERT_FALSE(terms.empty());
  bool has_battery = false;
  for (const FeatureTerm& t : terms) {
    if (t.phrase == "battery") has_battery = true;
    EXPECT_NE(t.phrase, "day");  // appears uniformly -> filtered
  }
  EXPECT_TRUE(has_battery);
  EXPECT_EQ(extractor.on_topic_docs(), 20u);
  EXPECT_EQ(extractor.off_topic_docs(), 40u);
}

TEST(FeatureExtractorTest, RanksByScoreDescending) {
  FeatureExtractor::Options options;
  options.min_df = 1;
  options.min_score = 0.5;
  FeatureExtractor extractor(options);
  for (int i = 0; i < 30; ++i) {
    std::string body = "The battery lasts long.";
    if (i < 10) body += " The screen works too.";
    extractor.AddDocument(body, true);
  }
  for (int i = 0; i < 30; ++i) {
    extractor.AddDocument("Nothing related at all here.", false);
  }
  std::vector<FeatureTerm> terms = extractor.Extract();
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_GE(terms[i - 1].score, terms[i].score);
  }
}

TEST(FeatureExtractorTest, TopNLimits) {
  FeatureExtractor::Options options;
  options.min_df = 1;
  options.min_score = 0.0;
  options.top_n = 1;
  FeatureExtractor extractor(options);
  for (int i = 0; i < 10; ++i) {
    extractor.AddDocument("The battery died. The screen cracked.", true);
    extractor.AddDocument("Unrelated filler text goes here.", false);
  }
  EXPECT_LE(extractor.Extract().size(), 1u);
}

// --- Heuristic variants -----------------------------------------------------------

class HeuristicTest : public ::testing::Test {
 protected:
  std::vector<std::string> Extract(const std::string& sentence,
                                   CandidateHeuristic heuristic) {
    text::TokenStream tokens = tokenizer_.Tokenize(sentence);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, spans[0]);
    std::vector<std::string> phrases;
    for (const BbnpExtractor::Candidate& c :
         extractor_.ExtractWithHeuristic(tokens, spans[0], tags,
                                         heuristic)) {
      phrases.push_back(c.phrase);
    }
    return phrases;
  }

  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  BbnpExtractor extractor_;
};

TEST_F(HeuristicTest, BnpFindsAllBaseNps) {
  std::vector<std::string> got = Extract(
      "Overall, the battery beats the old charger easily.",
      CandidateHeuristic::kBNP);
  // Every bNP-shaped run, regardless of article or position.
  EXPECT_NE(std::find(got.begin(), got.end(), "battery"), got.end());
  EXPECT_NE(std::find(got.begin(), got.end(), "old charger"), got.end());
}

TEST_F(HeuristicTest, DbnpRequiresDefiniteArticle) {
  std::vector<std::string> got = Extract(
      "Overall, the battery outlasted a charger.",
      CandidateHeuristic::kDBNP);
  EXPECT_EQ(got, (std::vector<std::string>{"battery"}));
}

TEST_F(HeuristicTest, BbnpStrictest) {
  const std::string s = "Overall, the battery beats the old charger.";
  EXPECT_TRUE(Extract(s, CandidateHeuristic::kBBNP).empty());
  EXPECT_FALSE(Extract(s, CandidateHeuristic::kDBNP).empty());
}

TEST_F(HeuristicTest, SubsetRelationHolds) {
  // bBNP candidates are a subset of dBNP candidates, which are a subset of
  // BNP candidates (per construction).
  for (const char* s :
       {"The battery lasts forever.", "The picture quality is stunning.",
        "I love the zoom on this camera.",
        "A tripod came with the package."}) {
    auto bbnp = Extract(s, CandidateHeuristic::kBBNP);
    auto dbnp = Extract(s, CandidateHeuristic::kDBNP);
    auto bnp = Extract(s, CandidateHeuristic::kBNP);
    for (const std::string& c : bbnp) {
      EXPECT_NE(std::find(dbnp.begin(), dbnp.end(), c), dbnp.end())
          << c << " in: " << s;
    }
    for (const std::string& c : dbnp) {
      EXPECT_NE(std::find(bnp.begin(), bnp.end(), c), bnp.end())
          << c << " in: " << s;
    }
  }
}

// --- Selection methods -------------------------------------------------------------

TEST(SelectionTest, AllMethodsZeroWhenNotAssociated) {
  ContingencyCounts c{1, 50, 100, 50};
  for (SelectionMethod m :
       {SelectionMethod::kLikelihoodRatio,
        SelectionMethod::kMutualInformation, SelectionMethod::kChiSquare}) {
    EXPECT_NEAR(SelectionScore(m, c), 0.0, 1e-12) << SelectionMethodName(m);
  }
}

TEST(SelectionTest, AllMethodsPositiveWhenAssociated) {
  ContingencyCounts c{40, 2, 60, 198};
  for (SelectionMethod m :
       {SelectionMethod::kLikelihoodRatio,
        SelectionMethod::kMutualInformation, SelectionMethod::kChiSquare}) {
    EXPECT_GT(SelectionScore(m, c), 0.0) << SelectionMethodName(m);
  }
}

TEST(SelectionTest, ChiSquareMonotoneInAssociation) {
  ContingencyCounts weak{30, 20, 70, 180};
  ContingencyCounts strong{45, 5, 55, 195};
  EXPECT_GT(ChiSquare(strong), ChiSquare(weak));
}

TEST(SelectionTest, MutualInformationFavorsRareExclusiveTerms) {
  // A rare term only in D+ vs a frequent term mostly in D+.
  ContingencyCounts rare{2, 0, 98, 200};
  ContingencyCounts frequent{80, 20, 20, 180};
  EXPECT_GT(MutualInformation(rare), MutualInformation(frequent));
  // ...whereas the LLR prefers the frequent, well-supported term.
  EXPECT_GT(LogLikelihoodRatio(frequent), LogLikelihoodRatio(rare));
}

TEST(SelectionTest, NamesDistinct) {
  EXPECT_NE(SelectionMethodName(SelectionMethod::kLikelihoodRatio),
            SelectionMethodName(SelectionMethod::kChiSquare));
  EXPECT_EQ(std::string(CandidateHeuristicName(CandidateHeuristic::kBBNP)),
            "bBNP");
}

}  // namespace
}  // namespace wf::feature
