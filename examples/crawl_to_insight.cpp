// End-to-end platform walkthrough (Figure 1): a simulated web crawl feeds
// the cluster, entity-level miners annotate each page, the indexer builds
// text + conceptual indices, the store snapshots to disk and reloads, and
// queries run scatter/gather over the Vinci bus.
//
//   $ ./crawl_to_insight [snapshot_dir]

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/ingest.h"
#include "platform/miner_framework.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

int main(int argc, char** argv) {
  using namespace wf;
  std::string snapshot_dir =
      argc > 1 ? argv[1] : "/tmp/webfountain_snapshot";

  // Build a small synthetic "web": pages link to the next few pages.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(7);
  std::map<std::string, std::string> site;
  std::vector<std::string> urls;
  for (size_t i = 0; i < petro.docs.size(); ++i) {
    std::string url = common::StrFormat("http://petro.example/%zu", i);
    site[url] = petro.docs[i].body;
    urls.push_back(url);
  }

  // Crawl from a single seed; each page links to three others.
  platform::CrawlerSimulator crawler(
      {urls[0]},
      [&site, &urls](const std::string& url)
          -> std::optional<platform::CrawlerSimulator::Page> {
        auto it = site.find(url);
        if (it == site.end()) return std::nullopt;
        platform::CrawlerSimulator::Page page;
        page.body = it->second;
        size_t index = std::stoul(url.substr(url.rfind('/') + 1));
        for (size_t k = 1; k <= 3; ++k) {
          page.outlinks.push_back(urls[(index * 3 + k) % urls.size()]);
        }
        return page;
      });

  platform::Cluster cluster(4);
  size_t stored = platform::IngestAll(crawler, cluster);
  std::printf("Crawled %zu pages into %zu shards.\n", stored,
              cluster.node_count());

  // Deploy the miner pipeline: sentence boundaries, token stats, and the
  // ad-hoc sentiment miner.
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  cluster.DeployMiner(
      [] { return std::make_unique<platform::SentenceBoundaryMiner>(); });
  cluster.DeployMiner(
      [] { return std::make_unique<platform::TokenStatsMiner>(); });
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();

  for (size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& s : cluster.node(n).pipeline().Stats()) {
      if (n == 0) {
        std::printf("miner %-18s node0: %zu entities, %lld us\n",
                    s.name.c_str(), s.entities,
                    static_cast<long long>(s.total_time.count()));
      }
    }
  }

  // Snapshot every shard to disk and reload it into a fresh cluster.
  std::filesystem::create_directories(snapshot_dir);
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    WF_CHECK_OK(cluster.node(n).store().Save(
        common::StrFormat("%s/shard-%zu.wfs", snapshot_dir.c_str(), n)));
  }
  platform::Cluster restored(4);
  for (size_t n = 0; n < restored.node_count(); ++n) {
    WF_CHECK_OK(restored.node(n).store().Load(
        common::StrFormat("%s/shard-%zu.wfs", snapshot_dir.c_str(), n)));
    restored.node(n).MineAndIndex();  // no miners deployed: index only
  }
  std::printf("Snapshot round-trip: %zu entities restored to %s.\n",
              restored.TotalEntities(), snapshot_dir.c_str());

  // Queries: full-text over the bus, then sentiment roll-ups.
  std::printf("\nPages mentioning 'pipeline': %zu\n",
              restored.Search("pipeline").docs.size());
  std::printf("Pages with the phrase 'safety record': %zu\n",
              restored.SearchPhrase({"safety", "record"}).docs.size());

  platform::SentimentQueryService service(&restored);
  WF_CHECK_OK(service.RegisterService());
  for (const corpus::Product& p : petro.domain->products) {
    platform::SentimentQueryResult r = service.Query(p.name, 2);
    if (r.positive_docs + r.negative_docs == 0) continue;
    std::printf("%-24s +%zu / -%zu pages\n", p.name.c_str(),
                r.positive_docs, r.negative_docs);
  }

  std::printf("\nVinci bus services: %zu registered\n",
              restored.bus().Services().size());
  return 0;
}
