// Ad-hoc sentiment queries (Mode B, Figure 3): no subject list is known up
// front. The cluster mines *all* named entities offline, indexes
// (entity, polarity) conceptual tokens, and then answers arbitrary subject
// queries in real time through the hosted query service.
//
//   $ ./adhoc_query [subject ...]
//
// With no arguments it queries a few subjects discovered from the index.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "corpus/datasets.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

int main(int argc, char** argv) {
  using namespace wf;

  // A mixed corpus: petroleum + pharma web pages and petroleum news.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(43);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(44);
  corpus::WebDataset news = corpus::BuildPetroleumNewsDataset(45);

  std::vector<std::pair<std::string, std::string>> docs;
  for (const auto* ds : {&petro, &pharma, &news}) {
    for (const corpus::GeneratedDoc& d : ds->docs) {
      docs.emplace_back(d.id, d.body);
    }
  }

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  platform::Cluster cluster(4);
  platform::BatchIngestor ingestor("mixed-web", std::move(docs));
  size_t stored = platform::IngestAll(ingestor, cluster);

  // Offline pass: the ad-hoc sentiment miner runs on every shard, guided
  // only by the named-entity spotter.
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();

  platform::SentimentQueryService service(&cluster);
  WF_CHECK_OK(service.RegisterService());

  std::printf("Indexed %zu pages across %zu nodes.\n", stored,
              cluster.node_count());

  std::vector<std::string> subjects;
  for (int i = 1; i < argc; ++i) subjects.emplace_back(argv[i]);
  if (subjects.empty()) {
    // Discover queryable subjects from the sentiment index itself.
    std::vector<std::string> known = service.KnownSubjects();
    std::printf("%zu subjects have indexed sentiment; querying a sample.\n",
                known.size());
    for (size_t i = 0; i < known.size() && subjects.size() < 5; i += 7) {
      subjects.push_back(known[i]);
    }
  }

  for (const std::string& subject : subjects) {
    platform::SentimentQueryResult result = service.Query(subject, 4);
    std::printf("\n\"%s\": %zu positive page(s), %zu negative page(s)\n",
                subject.c_str(), result.positive_docs, result.negative_docs);
    for (const platform::SentimentHit& hit : result.hits) {
      std::printf("  [%s] %s  (%s)\n",
                  hit.polarity == lexicon::Polarity::kPositive ? "+" : "-",
                  hit.sentence.c_str(), hit.doc_id.c_str());
    }
  }
  return 0;
}
