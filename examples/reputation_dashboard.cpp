// Reputation management (Mode A, Figure 2): mine a review corpus for a
// *predefined* set of subjects — products and their feature terms — and
// print the dashboards a brand manager would read: overall product
// reputation, per-feature strengths/weaknesses, and example quotes.
//
//   $ ./reputation_dashboard

#include <cstdio>

#include "common/string_util.h"
#include <string>
#include <vector>

#include "core/miner.h"
#include "core/sentiment_store.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"

int main() {
  using namespace wf;

  corpus::ReviewDataset camera = corpus::BuildCameraDataset(/*seed=*/42);
  const corpus::DomainVocab& domain = *camera.domain;

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  core::SentimentMiner::Config config;
  config.record_neutral = false;
  core::SentimentMiner miner(&lexicon, &patterns, config);

  // Subjects: every product (with brand variants) and every feature term.
  int id = 0;
  for (const corpus::Product& p : domain.products) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = p.name;
    set.variants = p.variants;
    miner.AddSubject(set);
  }
  for (const std::string& f : domain.features) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = f;
    if (f.find(' ') == std::string::npos && f.back() != 's') {
      set.variants.push_back(f + "s");
    }
    miner.AddSubject(set);
  }

  core::SentimentStore store;
  for (const corpus::GeneratedDoc& doc : camera.d_plus) {
    miner.ProcessDocument(doc.id, doc.body, &store);
  }
  std::printf("Mined %zu review pages -> %zu sentiment mentions.\n\n",
              camera.d_plus.size(), store.size());

  // Dashboard 1: product reputation.
  std::printf("%s", eval::Banner("Product reputation").c_str());
  eval::TablePrinter products({"Product", "Mentions", "+", "-", "Share"});
  for (const corpus::Product& p : domain.products) {
    core::SentimentAggregate agg = store.ForSubject(p.name);
    if (agg.total() == 0) continue;
    products.AddRow({p.name, std::to_string(agg.total()),
                     std::to_string(agg.positive),
                     std::to_string(agg.negative),
                     common::StrFormat("%.0f%%", agg.PositiveShare() * 100)});
  }
  std::printf("%s\n", products.ToString().c_str());

  // Dashboard 2: feature strengths and weaknesses.
  std::printf("%s", eval::Banner("Feature strengths / weaknesses").c_str());
  eval::TablePrinter features({"Feature", "Mentions", "+", "-", "Share"});
  for (const std::string& f : domain.features) {
    core::SentimentAggregate agg = store.ForSubject(f);
    if (agg.total() < 20) continue;
    features.AddRow({f, std::to_string(agg.total()),
                     std::to_string(agg.positive),
                     std::to_string(agg.negative),
                     common::StrFormat("%.0f%%", agg.PositiveShare() * 100)});
  }
  std::printf("%s\n", features.ToString().c_str());

  // Dashboard 3: example quotes for one feature.
  const std::string feature = "battery";
  std::printf("%s", eval::Banner("What reviewers say about: " + feature)
                        .c_str());
  int shown = 0;
  for (const core::SentimentMention* m :
       store.Find(feature, lexicon::Polarity::kNegative)) {
    if (shown++ >= 5) break;
    std::printf("  [-] \"%s\"  (%s)\n", m->sentence_text.c_str(),
                m->doc_id.c_str());
  }
  shown = 0;
  for (const core::SentimentMention* m :
       store.Find(feature, lexicon::Polarity::kPositive)) {
    if (shown++ >= 5) break;
    std::printf("  [+] \"%s\"  (%s)\n", m->sentence_text.c_str(),
                m->doc_id.c_str());
  }
  return 0;
}
