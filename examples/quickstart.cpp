// Quickstart: sentence-level, subject-level sentiment analysis with the
// public API in ~40 lines.
//
//   $ ./quickstart
//
// Pipeline: tokenize -> split sentences -> POS-tag -> shallow-parse ->
// match sentiment patterns -> assign polarity to the subject.

#include <cstdio>

#include "common/string_util.h"
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

int main() {
  using namespace wf;

  // The two linguistic resources of the paper: the sentiment lexicon and
  // the sentiment pattern database (both ship embedded; both can be
  // extended from files).
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentAnalyzer analyzer(&lexicon, &patterns);

  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  pos::PosTagger tagger;
  parse::SentenceAnalyzer parser;

  struct Example {
    const char* sentence;
    const char* subject;
  };
  const std::vector<Example> examples = {
      {"This camera takes excellent pictures.", "camera"},
      {"I am impressed by the flash capabilities.", "flash capabilities"},
      {"The colors are vibrant.", "colors"},
      {"The company offers mediocre services.", "company"},
      {"The picture is not sharp.", "picture"},
      {"Unlike the more recent T series CLIEs, the NR70 does not require "
       "an add-on adapter for MP3 playback.",
       "NR70"},
      {"Unlike the more recent T series CLIEs, the NR70 does not require "
       "an add-on adapter for MP3 playback.",
       "T series CLIEs"},
      {"The camera has a 3x zoom lens.", "camera"},
  };

  for (const Example& ex : examples) {
    text::TokenStream tokens = tokenizer.Tokenize(ex.sentence);
    std::vector<text::SentenceSpan> spans = splitter.Split(tokens);
    const text::SentenceSpan& span = spans[0];
    std::vector<pos::PosTag> tags = tagger.TagSentence(tokens, span);
    common::Arena arena;
    common::StringInterner interner(&arena);
    parse::SentenceParse parse = parser.Analyze(tokens, span, tags, &interner);

    // Locate the subject's tokens (a real application uses the Spotter).
    text::TokenStream subject = tokenizer.Tokenize(ex.subject);
    size_t begin = 0, end = 0;
    for (size_t i = span.begin_token;
         i + subject.size() <= span.end_token; ++i) {
      bool match = true;
      for (size_t k = 0; k < subject.size(); ++k) {
        if (!common::EqualsIgnoreCase(tokens[i + k].text,
                                      subject[k].text)) {
          match = false;
          break;
        }
      }
      if (match) {
        begin = i;
        end = i + subject.size();
        break;
      }
    }

    core::SubjectSentiment verdict =
        analyzer.AnalyzeSubject(tokens, parse, begin, end);
    std::printf("%-24s -> %-8s  %s\n", ex.subject,
                std::string(lexicon::PolarityName(verdict.polarity)).c_str(),
                ex.sentence);
    if (!verdict.pattern.empty()) {
      std::printf("%-24s    via pattern: %s\n", "", verdict.pattern.c_str());
    }
  }
  return 0;
}
