// The complete Figure 2 loop: feature terms are NOT given by the end user —
// the feature extractor discovers them from the review collection (§4.1),
// they are registered as subjects alongside the products, and the sentiment
// miner runs over the corpus. This is the "automatically identified by the
// feature extractor" path of the paper's Mode A.
//
//   $ ./auto_reputation

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "core/miner.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "feature/feature_extractor.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"

int main() {
  using namespace wf;

  corpus::ReviewDataset camera = corpus::BuildCameraDataset(/*seed=*/42);

  // Step 1 (§4.1): discover the feature vocabulary from D+ vs D-.
  feature::FeatureExtractor extractor;
  for (const corpus::GeneratedDoc& d : camera.d_plus) {
    extractor.AddDocument(d.body, /*on_topic=*/true);
  }
  for (const corpus::GeneratedDoc& d : camera.d_minus) {
    extractor.AddDocument(d.body, /*on_topic=*/false);
  }
  std::vector<feature::FeatureTerm> features = extractor.Extract();
  std::printf("Discovered %zu feature terms from %zu on-topic / %zu "
              "off-topic documents (bBNP + likelihood ratio).\n\n",
              features.size(), extractor.on_topic_docs(),
              extractor.off_topic_docs());

  // Step 2: register products (user-given) + discovered features as
  // spotter subjects.
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentMiner::Config config;
  config.record_neutral = false;
  core::SentimentMiner miner(&lexicon, &patterns, config);
  int id = 0;
  for (const corpus::Product& p : camera.domain->products) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = p.name;
    set.variants = p.variants;
    miner.AddSubject(set);
  }
  for (const feature::FeatureTerm& f : features) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = f.phrase;
    if (f.phrase.find(' ') == std::string::npos &&
        f.phrase.back() != 's') {
      set.variants.push_back(f.phrase + "s");
    }
    miner.AddSubject(set);
  }

  // Step 3: mine the corpus.
  core::SentimentStore store;
  for (const corpus::GeneratedDoc& d : camera.d_plus) {
    miner.ProcessDocument(d.id, d.body, &store);
  }
  std::printf("Mined %zu sentiment mentions across %zu pages.\n\n",
              store.size(), camera.d_plus.size());

  // Step 4: the analyst view — discovered features ranked by negativity
  // (the "individual weaknesses ... perhaps more valuable than the overall
  // satisfaction level" of §1.2).
  std::printf("%s", eval::Banner("Discovered features, worst first")
                        .c_str());
  struct Row {
    std::string feature;
    core::SentimentAggregate agg;
  };
  std::vector<Row> rows;
  for (const feature::FeatureTerm& f : features) {
    core::SentimentAggregate agg = store.ForSubject(f.phrase);
    if (agg.positive + agg.negative < 10) continue;
    rows.push_back(Row{f.phrase, agg});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.agg.PositiveShare() < b.agg.PositiveShare();
  });
  eval::TablePrinter table({"Feature", "+", "-", "Positive share"});
  for (const Row& r : rows) {
    table.AddRow({r.feature, std::to_string(r.agg.positive),
                  std::to_string(r.agg.negative),
                  common::StrFormat("%.0f%%",
                                    r.agg.PositiveShare() * 100.0)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
